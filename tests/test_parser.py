"""Unit tests for the SPARQL parser (happy paths)."""


from repro.rdf import IRI, BlankNode, Literal, Variable
from repro.sparql import ast, parse_query

RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


class TestQueryForms:
    def test_select(self):
        q = parse_query("SELECT ?x WHERE { ?x <urn:p> ?y }")
        assert q.query_type is ast.QueryType.SELECT
        assert q.projection.variables() == (Variable("x"),)

    def test_select_star(self):
        q = parse_query("SELECT * WHERE { ?x <urn:p> ?y }")
        assert q.projection.select_all

    def test_select_distinct(self):
        q = parse_query("SELECT DISTINCT ?x WHERE { ?x <urn:p> ?y }")
        assert q.projection.distinct

    def test_select_reduced(self):
        q = parse_query("SELECT REDUCED ?x WHERE { ?x <urn:p> ?y }")
        assert q.projection.reduced

    def test_select_expression(self):
        q = parse_query("SELECT (STRLEN(?n) AS ?len) WHERE { ?x <urn:n> ?n }")
        item = q.projection.items[0]
        assert isinstance(item, ast.ProjectionExpression)
        assert item.variable == Variable("len")

    def test_ask(self):
        q = parse_query("ASK { <urn:s> <urn:p> <urn:o> }")
        assert q.query_type is ast.QueryType.ASK

    def test_ask_with_where_keyword(self):
        q = parse_query("ASK WHERE { ?s ?p ?o }")
        assert q.query_type is ast.QueryType.ASK

    def test_construct(self):
        q = parse_query(
            "CONSTRUCT { ?s <urn:new> ?o } WHERE { ?s <urn:old> ?o }"
        )
        assert q.query_type is ast.QueryType.CONSTRUCT
        assert len(q.template) == 1

    def test_construct_where_short_form(self):
        q = parse_query("CONSTRUCT WHERE { ?s <urn:p> ?o }")
        assert len(q.template) == 1
        assert q.pattern is not None

    def test_describe_iri(self):
        q = parse_query("DESCRIBE <urn:thing>")
        assert q.query_type is ast.QueryType.DESCRIBE
        assert q.describe_targets == (IRI("urn:thing"),)
        assert not q.has_body()

    def test_describe_star_with_body(self):
        q = parse_query("DESCRIBE * WHERE { ?x <urn:p> ?y }")
        assert q.describe_all
        assert q.has_body()

    def test_describe_variable(self):
        q = parse_query("DESCRIBE ?x WHERE { ?x <urn:p> 1 }")
        assert q.describe_targets == (Variable("x"),)


class TestPrologue:
    def test_prefix_expansion(self):
        q = parse_query("PREFIX ex: <urn:x:> SELECT * WHERE { ?s ex:p ?o }")
        triple = q.pattern.elements[0]
        assert triple.predicate == IRI("urn:x:p")

    def test_empty_prefix(self):
        q = parse_query("PREFIX : <urn:d:> ASK { ?s :p :o }")
        triple = q.pattern.elements[0]
        assert triple.object == IRI("urn:d:o")

    def test_prologue_recorded(self):
        q = parse_query("PREFIX a: <urn:a:> PREFIX b: <urn:b:> ASK { ?s a:p ?o }")
        assert q.prologue.prefixes == (("a", "urn:a:"), ("b", "urn:b:"))

    def test_base_resolution_relative(self):
        q = parse_query("BASE <http://ex.org/data/> ASK { ?s <p> ?o }")
        triple = q.pattern.elements[0]
        assert triple.predicate == IRI("http://ex.org/data/p")

    def test_base_absolute_untouched(self):
        q = parse_query("BASE <http://ex.org/> ASK { ?s <urn:p> ?o }")
        assert q.pattern.elements[0].predicate == IRI("urn:p")

    def test_extra_prefixes_parameter(self):
        q = parse_query(
            "SELECT * WHERE { ?s dbo:birthPlace ?o }",
            extra_prefixes={"dbo": "http://dbpedia.org/ontology/"},
        )
        triple = q.pattern.elements[0]
        assert triple.predicate == IRI("http://dbpedia.org/ontology/birthPlace")

    def test_a_keyword_is_rdf_type(self):
        q = parse_query("ASK { ?s a <urn:Class> }")
        assert q.pattern.elements[0].predicate == RDF_TYPE


class TestTriplesBlocks:
    def test_semicolon_shares_subject(self):
        q = parse_query("ASK { ?s <urn:p> ?a ; <urn:q> ?b }")
        triples = q.pattern.elements
        assert len(triples) == 2
        assert triples[0].subject == triples[1].subject

    def test_comma_shares_predicate(self):
        q = parse_query("ASK { ?s <urn:p> ?a , ?b }")
        triples = q.pattern.elements
        assert len(triples) == 2
        assert triples[0].predicate == triples[1].predicate

    def test_trailing_semicolon_tolerated(self):
        q = parse_query("ASK { ?s <urn:p> ?a ; }")
        assert len(q.pattern.elements) == 1

    def test_blank_node_property_list(self):
        q = parse_query("ASK { ?x <urn:p> [ <urn:q> 5 ] }")
        triples = q.pattern.elements
        assert len(triples) == 2
        outer = next(t for t in triples if t.predicate == IRI("urn:p"))
        inner = next(t for t in triples if t.predicate == IRI("urn:q"))
        assert isinstance(outer.object, BlankNode)
        assert inner.subject == outer.object

    def test_blank_node_as_statement(self):
        q = parse_query("ASK { [ <urn:p> 1 ; <urn:q> 2 ] }")
        assert len(q.pattern.elements) == 2

    def test_anon_blank(self):
        q = parse_query("ASK { ?x <urn:p> [] }")
        assert isinstance(q.pattern.elements[0].object, BlankNode)

    def test_collection(self):
        q = parse_query("ASK { ?x <urn:p> (1 2) }")
        # 1 main triple + 2 first + 2 rest
        assert len(q.pattern.elements) == 5

    def test_empty_collection_is_nil(self):
        q = parse_query("ASK { ?x <urn:p> () }")
        triple = q.pattern.elements[0]
        assert triple.object == IRI(
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil"
        )

    def test_numeric_literals(self):
        q = parse_query("ASK { ?x <urn:p> 5 . ?x <urn:q> 2.5 . ?x <urn:r> 1e3 }")
        objects = [t.object for t in q.pattern.elements]
        assert objects[0].datatype.endswith("integer")
        assert objects[1].datatype.endswith("decimal")
        assert objects[2].datatype.endswith("double")

    def test_negative_number(self):
        q = parse_query("ASK { ?x <urn:p> -5 }")
        assert q.pattern.elements[0].object == Literal(
            "-5", datatype="http://www.w3.org/2001/XMLSchema#integer"
        )

    def test_boolean_literals(self):
        q = parse_query("ASK { ?x <urn:p> true . ?x <urn:q> false }")
        assert q.pattern.elements[0].object.lexical == "true"

    def test_typed_literal(self):
        q = parse_query('ASK { ?x <urn:p> "5"^^<urn:mytype> }')
        assert q.pattern.elements[0].object.datatype == "urn:mytype"


class TestGraphPatternOperators:
    def test_optional(self):
        q = parse_query("SELECT * WHERE { ?s <urn:p> ?o OPTIONAL { ?o <urn:q> ?z } }")
        assert isinstance(q.pattern.elements[1], ast.OptionalPattern)

    def test_union(self):
        q = parse_query("SELECT * WHERE { { ?s <urn:a> ?o } UNION { ?s <urn:b> ?o } }")
        assert isinstance(q.pattern.elements[0], ast.UnionPattern)

    def test_nested_union(self):
        q = parse_query(
            "SELECT * WHERE { { ?s <urn:a> ?o } UNION { ?s <urn:b> ?o } "
            "UNION { ?s <urn:c> ?o } }"
        )
        union = q.pattern.elements[0]
        assert isinstance(union.left, ast.UnionPattern)

    def test_minus(self):
        q = parse_query("SELECT * WHERE { ?s <urn:p> ?o MINUS { ?s <urn:q> ?o } }")
        assert isinstance(q.pattern.elements[1], ast.MinusPattern)

    def test_graph_iri(self):
        q = parse_query("SELECT * WHERE { GRAPH <urn:g> { ?s ?p ?o } }")
        graph_pattern = q.pattern.elements[0]
        assert isinstance(graph_pattern, ast.GraphGraphPattern)
        assert graph_pattern.graph == IRI("urn:g")

    def test_graph_variable(self):
        q = parse_query("SELECT * WHERE { GRAPH ?g { ?s ?p ?o } }")
        assert q.pattern.elements[0].graph == Variable("g")

    def test_service_silent(self):
        q = parse_query(
            "SELECT * WHERE { SERVICE SILENT <urn:endpoint> { ?s ?p ?o } }"
        )
        service = q.pattern.elements[0]
        assert isinstance(service, ast.ServicePattern)
        assert service.silent

    def test_bind(self):
        q = parse_query("SELECT * WHERE { ?s <urn:p> ?o BIND(?o AS ?copy) }")
        bind = q.pattern.elements[1]
        assert isinstance(bind, ast.BindPattern)
        assert bind.variable == Variable("copy")

    def test_filter(self):
        q = parse_query("SELECT * WHERE { ?s <urn:p> ?o FILTER(?o > 5) }")
        filter_pattern = q.pattern.elements[1]
        assert isinstance(filter_pattern, ast.FilterPattern)
        assert isinstance(filter_pattern.expression, ast.Comparison)

    def test_values_inline(self):
        q = parse_query(
            "SELECT * WHERE { ?s <urn:p> ?o VALUES (?s) { (<urn:a>) (UNDEF) } }"
        )
        values = q.pattern.elements[1]
        assert isinstance(values, ast.ValuesPattern)
        assert values.rows == ((IRI("urn:a"),), (None,))

    def test_values_single_variable_form(self):
        q = parse_query("SELECT * WHERE { VALUES ?x { 1 2 3 } }")
        values = q.pattern.elements[0]
        assert len(values.rows) == 3

    def test_trailing_values_clause(self):
        q = parse_query("SELECT * WHERE { ?s ?p ?o } VALUES ?s { <urn:a> }")
        assert q.values is not None

    def test_subselect(self):
        q = parse_query(
            "SELECT ?avg WHERE { { SELECT (AVG(?v) AS ?avg) WHERE { ?s <urn:v> ?v } } }"
        )
        sub = q.pattern.elements[0]
        assert isinstance(sub, ast.SubSelectPattern)
        assert sub.query.query_type is ast.QueryType.SELECT

    def test_nested_group(self):
        q = parse_query("SELECT * WHERE { { ?s <urn:p> ?o } }")
        assert isinstance(q.pattern.elements[0], ast.GroupPattern)


class TestPropertyPaths:
    def test_sequence(self):
        q = parse_query("ASK { ?s <urn:a>/<urn:b> ?o }")
        path = q.pattern.elements[0].path
        assert isinstance(path, ast.PathSequence)
        assert len(path.steps) == 2

    def test_alternative(self):
        q = parse_query("ASK { ?s <urn:a>|<urn:b> ?o }")
        assert isinstance(q.pattern.elements[0].path, ast.PathAlternative)

    def test_star(self):
        q = parse_query("ASK { ?s <urn:a>* ?o }")
        path = q.pattern.elements[0].path
        assert isinstance(path, ast.PathMod) and path.modifier == "*"

    def test_plus_and_question(self):
        q = parse_query("ASK { ?s <urn:a>+ ?o . ?s <urn:b>? ?z }")
        assert q.pattern.elements[0].path.modifier == "+"
        assert q.pattern.elements[1].path.modifier == "?"

    def test_inverse(self):
        q = parse_query("ASK { ?s ^<urn:a> ?o }")
        assert isinstance(q.pattern.elements[0].path, ast.PathInverse)

    def test_negated_single(self):
        q = parse_query("ASK { ?s !<urn:a> ?o }")
        path = q.pattern.elements[0].path
        assert isinstance(path, ast.PathNegated)
        assert path.forward == (IRI("urn:a"),)

    def test_negated_set_with_inverse(self):
        q = parse_query("ASK { ?s !(<urn:a>|^<urn:b>) ?o }")
        path = q.pattern.elements[0].path
        assert path.forward == (IRI("urn:a"),)
        assert path.inverse == (IRI("urn:b"),)

    def test_parenthesized_sequence_star(self):
        q = parse_query("ASK { ?s (<urn:a>/<urn:b>)* ?o }")
        path = q.pattern.elements[0].path
        assert isinstance(path, ast.PathMod)
        assert isinstance(path.path, ast.PathSequence)

    def test_plain_iri_verb_is_triple_not_path(self):
        q = parse_query("ASK { ?s <urn:a> ?o }")
        assert isinstance(q.pattern.elements[0], ast.TriplePattern)

    def test_a_star_path(self):
        q = parse_query("ASK { ?s a* ?o }")
        path = q.pattern.elements[0].path
        assert isinstance(path.path, ast.PathIRI)
        assert path.path.iri == RDF_TYPE


class TestExpressions:
    def test_precedence_or_and(self):
        q = parse_query("ASK { ?s ?p ?o FILTER(?a || ?b && ?c) }")
        expression = q.pattern.elements[1].expression
        assert isinstance(expression, ast.OrExpression)
        assert isinstance(expression.operands[1], ast.AndExpression)

    def test_arithmetic_precedence(self):
        q = parse_query("ASK { ?s ?p ?o FILTER(?a + ?b * ?c = 7) }")
        comparison = q.pattern.elements[1].expression
        assert isinstance(comparison.left, ast.Arithmetic)
        assert comparison.left.op == "+"
        assert comparison.left.right.op == "*"

    def test_unary_not(self):
        q = parse_query("ASK { ?s ?p ?o FILTER(!BOUND(?x)) }")
        assert isinstance(q.pattern.elements[1].expression, ast.NotExpression)

    def test_in_expression(self):
        q = parse_query("ASK { ?s ?p ?o FILTER(?o IN (1, 2, 3)) }")
        expression = q.pattern.elements[1].expression
        assert isinstance(expression, ast.InExpression)
        assert len(expression.choices) == 3

    def test_not_in(self):
        q = parse_query("ASK { ?s ?p ?o FILTER(?o NOT IN (1)) }")
        assert q.pattern.elements[1].expression.negated

    def test_builtin_no_parens_filter(self):
        q = parse_query('ASK { ?s ?p ?o FILTER regex(?o, "x") }')
        expression = q.pattern.elements[1].expression
        assert isinstance(expression, ast.BuiltinCall)
        assert expression.name == "REGEX"

    def test_exists(self):
        q = parse_query("ASK { ?s ?p ?o FILTER EXISTS { ?s <urn:q> ?z } }")
        expression = q.pattern.elements[1].expression
        assert isinstance(expression, ast.ExistsExpression)
        assert not expression.negated

    def test_not_exists(self):
        q = parse_query("ASK { ?s ?p ?o FILTER NOT EXISTS { ?s <urn:q> ?z } }")
        assert q.pattern.elements[1].expression.negated

    def test_function_call_cast(self):
        q = parse_query(
            "PREFIX xsd: <http://www.w3.org/2001/XMLSchema#> "
            "ASK { ?s ?p ?o FILTER(xsd:integer(?o) > 3) }"
        )
        comparison = q.pattern.elements[1].expression
        assert isinstance(comparison.left, ast.FunctionCall)


class TestSolutionModifiers:
    def test_limit_offset(self):
        q = parse_query("SELECT * WHERE { ?s ?p ?o } LIMIT 10 OFFSET 20")
        assert q.modifier.limit == 10
        assert q.modifier.offset == 20

    def test_offset_before_limit(self):
        q = parse_query("SELECT * WHERE { ?s ?p ?o } OFFSET 5 LIMIT 2")
        assert (q.modifier.limit, q.modifier.offset) == (2, 5)

    def test_order_by_variants(self):
        q = parse_query(
            "SELECT * WHERE { ?s ?p ?o } ORDER BY ?s DESC(?p) ASC(?o)"
        )
        conditions = q.modifier.order_by
        assert len(conditions) == 3
        assert not conditions[0].descending
        assert conditions[1].descending
        assert not conditions[2].descending

    def test_group_by_having(self):
        q = parse_query(
            "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } "
            "GROUP BY ?s HAVING (COUNT(?o) > 2)"
        )
        assert len(q.modifier.group_by) == 1
        assert len(q.modifier.having) == 1

    def test_group_by_expression_alias(self):
        q = parse_query(
            "SELECT ?l WHERE { ?s ?p ?o } GROUP BY (STRLEN(?s) AS ?l)"
        )
        condition = q.modifier.group_by[0]
        assert isinstance(condition, ast.ProjectionExpression)

    def test_aggregates(self):
        q = parse_query(
            "SELECT (COUNT(DISTINCT ?x) AS ?c) (SUM(?v) AS ?s) "
            "(GROUP_CONCAT(?n; SEPARATOR=\",\") AS ?g) WHERE { ?x <urn:v> ?v }"
        )
        count = q.projection.items[0].expression
        assert count.name == "COUNT" and count.distinct
        concat = q.projection.items[2].expression
        assert concat.separator == ","

    def test_count_star(self):
        q = parse_query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }")
        aggregate = q.projection.items[0].expression
        assert aggregate.expression is None

    def test_dataset_clauses(self):
        q = parse_query(
            "SELECT * FROM <urn:g1> FROM NAMED <urn:g2> WHERE { ?s ?p ?o }"
        )
        assert q.datasets == ((IRI("urn:g1"), False), (IRI("urn:g2"), True))


class TestRealWorldQueries:
    def test_wikidata_archaeological_sites(self):
        q = parse_query(
            """
            PREFIX wdt: <http://www.wikidata.org/prop/direct/>
            PREFIX wd: <http://www.wikidata.org/entity/>
            PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
            SELECT ?label ?coord ?subj
            WHERE
            { ?subj wdt:P31/wdt:P279* wd:Q839954 .
              ?subj wdt:P625 ?coord .
              ?subj rdfs:label ?label filter(lang(?label)="en")
            }
            """
        )
        assert q.query_type is ast.QueryType.SELECT
        assert len(q.pattern.elements) == 4  # path + 2 triples + filter

    def test_dbpedia_style_query(self):
        q = parse_query(
            """
            PREFIX dbo: <http://dbpedia.org/ontology/>
            PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
            SELECT DISTINCT ?city ?name WHERE {
              ?city a dbo:City ;
                    rdfs:label ?name ;
                    dbo:country <http://dbpedia.org/resource/France> .
              FILTER (lang(?name) = "fr")
            } ORDER BY ?name LIMIT 100
            """
        )
        assert q.projection.distinct
        assert q.modifier.limit == 100
        assert len(q.pattern.elements) == 4

    def test_keyword_case_insensitivity(self):
        q = parse_query("select ?x where { ?x <urn:p> ?y } limit 5")
        assert q.query_type is ast.QueryType.SELECT
        assert q.modifier.limit == 5
