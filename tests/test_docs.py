"""Docs can't rot: code blocks and links in README/docs are checked.

Three guards over every markdown file (README.md + docs/*.md):

* every fenced ``python`` block must parse (syntax smoke);
* every ``repro`` import a python block shows must resolve against the
  installed package — renamed or removed API surfaces fail here;
* every ``repro <verb> --flag`` line in a ``console`` block must name a
  real CLI verb and real flags of that verb's parser;
* every relative markdown link must point at a file that exists.

CI runs this file in a dedicated docs job (see
``.github/workflows/ci.yml``); it is cheap enough to ride tier-1 too.
"""

import argparse
import ast
import importlib
import re
import shlex
from pathlib import Path

import pytest

from repro.cli import _build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

FENCE_RE = re.compile(r"^```(\w*)\s*$")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def fenced_blocks(path: Path):
    """Yield (language, first_line_number, text) for each fenced block."""
    language, start, lines = None, 0, []
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        match = FENCE_RE.match(line)
        if match and language is None:
            language, start, lines = match.group(1) or "text", number + 1, []
        elif line.strip() == "```" and language is not None:
            yield language, start, "\n".join(lines)
            language = None
        elif language is not None:
            lines.append(line)
    assert language is None, f"{path}: unterminated ``` fence"


def doc_blocks(language):
    """All blocks of one language across the doc set, as pytest params."""
    params = []
    for path in DOC_FILES:
        for block_language, line, text in fenced_blocks(path):
            if block_language == language:
                params.append(
                    pytest.param(
                        path, text, id=f"{path.relative_to(REPO_ROOT)}:{line}"
                    )
                )
    return params


def test_docs_exist():
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md") in DOC_FILES
    assert (REPO_ROOT / "docs" / "CLI.md") in DOC_FILES


@pytest.mark.parametrize("path, code", doc_blocks("python"))
def test_python_blocks_parse(path, code):
    compile(code, str(path), "exec")


@pytest.mark.parametrize("path, code", doc_blocks("python"))
def test_python_blocks_import_real_api(path, code):
    """Every `repro` name a doc example imports must actually exist."""
    tree = ast.parse(code)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.level or not (node.module or "").split(".")[0] == "repro":
                continue
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path}: `from {node.module} import {alias.name}` "
                    "names a missing attribute"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    importlib.import_module(alias.name)


def _parser_flags(parser):
    """All option strings of *parser*, including nested subcommands
    (``repro warehouse ingest|query|stats`` nests one level)."""
    flags = set()
    for action in parser._actions:
        flags.update(action.option_strings)
        if isinstance(action, argparse._SubParsersAction):
            for subparser in action.choices.values():
                flags.update(_parser_flags(subparser))
    return flags


def _cli_vocabulary():
    parser = _build_parser()
    root_flags = {
        option for action in parser._actions for option in action.option_strings
    }
    verbs = {}
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for verb, subparser in action.choices.items():
                verbs[verb] = _parser_flags(subparser)
    return root_flags, verbs


@pytest.mark.parametrize("path, text", doc_blocks("console"))
def test_console_blocks_use_real_cli_flags(path, text):
    """`repro <verb> --flag` lines must match the real parser."""
    root_flags, verbs = _cli_vocabulary()
    for line in text.splitlines():
        line = line.split("#", 1)[0].strip()
        tokens = shlex.split(line)
        if not tokens:
            continue
        if tokens[:3] == ["python", "-m", "repro"]:
            tokens = ["repro"] + tokens[3:]
        if tokens[0] != "repro" or len(tokens) < 2:
            continue
        verb = tokens[1]
        if verb.startswith("-"):
            assert verb.split("=")[0] in root_flags, f"{path}: {line}"
            continue
        if not re.fullmatch(r"[a-z][a-z0-9-]*", verb):
            continue  # placeholder like `repro <command> --help`
        assert verb in verbs, f"{path}: unknown verb in {line!r}"
        for token in tokens[2:]:
            if token.startswith("--"):
                flag = token.split("=")[0]
                assert flag in verbs[verb], (
                    f"{path}: `repro {verb}` has no flag {flag} ({line!r})"
                )


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=[str(p.relative_to(REPO_ROOT)) for p in DOC_FILES]
)
def test_relative_links_resolve(path):
    """Relative links in the docs must point at files that exist."""
    for target in LINK_RE.findall(path.read_text(encoding="utf-8")):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
            continue
        if target.startswith("#"):  # in-page anchor
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
            continue  # GitHub-UI paths like ../../actions/… escape the repo
        assert resolved.exists(), f"{path}: broken relative link {target!r}"
