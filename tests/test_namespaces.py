"""Unit tests for namespace management."""

import pytest

from repro.rdf import IRI, WELL_KNOWN_PREFIXES, Namespace, NamespaceManager


class TestNamespace:
    def test_attribute_access(self):
        foaf = Namespace("http://xmlns.com/foaf/0.1/")
        assert foaf.name == IRI("http://xmlns.com/foaf/0.1/name")

    def test_item_access(self):
        ns = Namespace("urn:x:")
        assert ns["class"] == IRI("urn:x:class")

    def test_contains(self):
        ns = Namespace("urn:x:")
        assert IRI("urn:x:a") in ns
        assert IRI("urn:y:a") not in ns

    def test_private_attribute_raises(self):
        ns = Namespace("urn:x:")
        with pytest.raises(AttributeError):
            ns._hidden


class TestNamespaceManager:
    def test_expand(self):
        manager = NamespaceManager({"ex": "urn:example:"})
        assert manager.expand("ex", "thing") == IRI("urn:example:thing")

    def test_expand_unknown_prefix_raises(self):
        manager = NamespaceManager()
        with pytest.raises(KeyError):
            manager.expand("nope", "thing")

    def test_bind_replaces(self):
        manager = NamespaceManager({"ex": "urn:a:"})
        manager.bind("ex", "urn:b:")
        assert manager.expand("ex", "x") == IRI("urn:b:x")

    def test_compact(self):
        manager = NamespaceManager({"foaf": "http://xmlns.com/foaf/0.1/"})
        assert manager.compact(IRI("http://xmlns.com/foaf/0.1/name")) == "foaf:name"

    def test_compact_prefers_longest_namespace(self):
        manager = NamespaceManager({"a": "urn:x:", "b": "urn:x:y/"})
        assert manager.compact(IRI("urn:x:y/z")) == "b:z"

    def test_compact_refuses_slashes_in_local(self):
        manager = NamespaceManager({"a": "urn:x/"})
        assert manager.compact(IRI("urn:x/deep/path")) is None

    def test_compact_unknown(self):
        manager = NamespaceManager()
        assert manager.compact(IRI("urn:other:x")) is None

    def test_with_well_known(self):
        manager = NamespaceManager.with_well_known()
        assert "rdf" in manager
        assert manager.expand("rdfs", "label") == IRI(
            "http://www.w3.org/2000/01/rdf-schema#label"
        )

    def test_len_and_bindings(self):
        manager = NamespaceManager({"a": "urn:a:", "b": "urn:b:"})
        assert len(manager) == 2
        assert list(manager.bindings()) == [("a", "urn:a:"), ("b", "urn:b:")]

    def test_well_known_includes_wikidata(self):
        assert WELL_KNOWN_PREFIXES["wdt"].startswith("http://www.wikidata.org/")
