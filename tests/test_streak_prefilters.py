"""The streak similarity prefilter chain is exact (ISSUE 6).

The fast kernel (:func:`repro.analysis.streaks.prepared_similar`) may
settle a pair by equality, length difference, the bag-of-characters
bound, or the common-affix upper bound before any DP runs — but every
one of those shortcuts must be a *provable* bound on the edit
distance.  These properties pin that down against hypothesis-generated
pairs and real log pairs:

* the bag bound never exceeds the true Levenshtein distance (so a
  bag-reject can never kill a pair the DP would accept);
* the filtered kernel decides every pair exactly like the
  pre-prefilter reference kernel;
* the bit-parallel distance engine equals the full O(n²) DP;
* worker-precomputed boundary tables leave merges byte-identical;
* lean-mode ``repro streaks`` output is byte-identical to
  full-ingestion output.
"""

import io
import contextlib
import string

from hypothesis import given, settings, strategies as st

from repro.analysis.streaks import (
    PreparedText,
    SIMILARITY_COUNTERS,
    StreakAccumulator,
    _levenshtein_full,
    _similar_reference,
    bag_distance_bound,
    levenshtein,
    prepared_similar,
    strip_prefixes,
    stripped_similar,
)
from repro.api import analyze_corpora
from repro.cli import main
from repro.workload import generate_day_log

# Small alphabet: collisions (equal bags, shared affixes, near misses)
# are what stress the filter chain, not character diversity.
_texts = st.text(alphabet=string.ascii_lowercase[:6] + " {}?", max_size=40)
_thresholds = st.sampled_from([0.0, 0.1, 0.25, 0.5, 1.0])


@given(_texts, _texts)
def test_bag_bound_is_a_lower_bound(a, b):
    """bag_distance_bound(a, b) <= levenshtein(a, b), always."""
    bound = bag_distance_bound(PreparedText(a).freq, PreparedText(b).freq)
    assert bound <= _levenshtein_full(a, b)


@given(_texts, _texts, _thresholds)
def test_prefilters_never_flip_a_decision(a, b, threshold):
    """Filtered kernel ≡ pre-prefilter reference kernel, any pair."""
    assert stripped_similar(a, b, threshold) == _similar_reference(
        a, b, threshold
    )


@given(_texts, _texts)
def test_bitparallel_distance_equals_full_dp(a, b):
    """The Myers engine computes the exact Levenshtein distance."""
    assert levenshtein(a, b) == _levenshtein_full(a, b)


@given(_texts, _texts, st.integers(0, 12))
def test_bounded_distance_agrees_with_full_dp(a, b, max_distance):
    """levenshtein(..., max_distance=k) is exact on both sides of k."""
    full = _levenshtein_full(a, b)
    expected = full if full <= max_distance else None
    assert levenshtein(a, b, max_distance=max_distance) == expected


@given(st.lists(_texts, max_size=60), st.integers(1, 8), st.integers(1, 20))
@settings(max_examples=50, deadline=None)
def test_boundary_tables_leave_merges_byte_identical(texts, window, cut):
    """Merging with a precomputed boundary table equals merging without."""
    cut = min(cut, len(texts))
    plain_left = StreakAccumulator(window=window)
    primed_left = StreakAccumulator(window=window)
    for text in texts[:cut]:
        plain_left.push(text)
        primed_left.push(text)
    primed_left.precompute_boundary(texts[cut:cut + window])
    right = StreakAccumulator(window=window)
    for text in texts[cut:]:
        right.push(text)
    assert primed_left.merge(right.copy()) == plain_left.merge(right)
    assert primed_left.to_dict() == plain_left.to_dict()


def test_prepared_similar_matches_stripped_similar_on_log_pairs():
    """Real log pairs through both entry points, plus counter sanity."""
    stripped = [strip_prefixes(q) for q in generate_day_log(120, seed=3)]
    pairs = [(a, b) for a in stripped[:40] for b in stripped[40:80]]
    SIMILARITY_COUNTERS.reset()
    for a, b in pairs:
        assert prepared_similar(
            PreparedText(a), PreparedText(b)
        ) == _similar_reference(a, b)
    counters = SIMILARITY_COUNTERS.to_dict()
    settled = (
        counters["equal_accepts"]
        + counters["length_rejects"]
        + counters["bag_rejects"]
        + counters["trim_accepts"]
        + counters["dp_runs"]
    )
    assert counters["comparisons"] == len(pairs) == settled


def test_lean_mode_streak_state_is_byte_identical():
    """Lean and full ingestion agree on everything but Valid/Unique."""
    log = generate_day_log(150, session_rate=0.4, seed=11)
    lean = analyze_corpora({"day": log}, metrics=("streaks",), lean=True)
    full = analyze_corpora({"day": log}, metrics=("streaks",), lean=False)
    assert (
        lean.study.datasets["day"].streaks == full.study.datasets["day"].streaks
    )
    assert (
        lean.study.datasets["day"].streaks.to_dict()
        == full.study.datasets["day"].streaks.to_dict()
    )
    assert lean.study.datasets["day"].total == len(log)
    assert lean.study.datasets["day"].valid == 0  # parse never ran
    assert full.study.datasets["day"].valid > 0


def test_lean_cli_streaks_output_byte_identical():
    """End to end: `repro streaks` lean vs --full-ingestion bytes."""
    outputs = {}
    for label, extra in (("lean", []), ("full", ["--full-ingestion"])):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main(
                ["streaks", "--synthetic", "300", "--seed", "2016", *extra]
            )
        assert code == 0
        outputs[label] = buffer.getvalue()
    assert outputs["lean"] == outputs["full"]
    assert "Table 6" in outputs["lean"]


def test_lean_requires_sequence_only_metrics():
    """lean=True with per-query passes must fail validation loudly."""
    import pytest

    with pytest.raises(ValueError, match="per-query passes"):
        analyze_corpora(
            {"day": ["ASK { ?s ?p ?o }"]}, metrics=("shallow", "streaks"),
            lean=True,
        )
    with pytest.raises(ValueError, match="sequence metric"):
        analyze_corpora({"day": ["ASK { ?s ?p ?o }"]}, lean=True)


def test_parallel_ingestion_counters_match_serial_exactly():
    """Sharded chunks ship counter deltas home; totals must be exact.

    Regression for a silent drop: pool workers mutate their *own*
    ``SIMILARITY_COUNTERS``, so before the deltas rode back with the
    chunk results the parent's totals under-counted whenever ingestion
    actually forked.  workers=1 (in-process chunks) and workers=2
    (forked chunks) must now agree to the query, not approximately.
    """
    from repro.analysis.context import AnalysisOptions
    from repro.analysis.parallel import build_query_logs_parallel

    log = generate_day_log(200, session_rate=0.5, seed=7)
    options = AnalysisOptions(metrics=("streaks",))
    totals = {}
    for workers in (1, 2):
        SIMILARITY_COUNTERS.reset()
        logs = build_query_logs_parallel(
            {"day": log}, workers=workers, chunk_size=16, options=options
        )
        assert logs["day"].sequences is not None
        totals[workers] = SIMILARITY_COUNTERS.to_dict()
    assert totals[1] == totals[2]
    assert totals[1]["comparisons"] > 0
