"""Streaks as a first-class metric of the sharded pipeline (ISSUE 5).

End-to-end contracts:

* ``repro analyze --metrics streaks`` (via the facade) detects exactly
  what the standalone serial ``find_streaks`` scan detects — serial,
  sharded, and streamed ingestion all byte-identical;
* streak state snapshots with the study (``SCHEMA_VERSION`` 3, lean
  chains), and a reloaded snapshot renders Table 6 byte-identically to
  the direct run;
* shard snapshots of one log merge by *stitching* the stream, equal to
  analyzing the whole log at once;
* schema-1 snapshots (pre-streaks) still load, with no streak state,
  and schema-2 chains (full member-position lists) convert on load.
"""

import json

import pytest

from repro.analysis.snapshot import (
    SCHEMA_VERSION,
    load_study,
    save_study,
    study_from_dict,
)
from repro.analysis.streaks import find_streaks, streak_length_histogram
from repro.api import AnalysisRequest, AnalysisSession, analyze_corpora, merge_studies
from repro.exceptions import StudySnapshotError
from repro.reporting import render_table6_from_study
from repro.workload import generate_day_log


@pytest.fixture(scope="module")
def day_log():
    return generate_day_log(n_queries=220, session_rate=0.35, seed=2016)


@pytest.fixture(scope="module")
def streak_result(day_log):
    return analyze_corpora({"day": day_log}, metrics=("streaks",))


class TestFacadeEquivalence:
    def test_matches_serial_find_streaks(self, day_log, streak_result):
        accumulator = streak_result.study.datasets["day"].streaks
        assert accumulator is not None
        serial = find_streaks(day_log, window=30)
        assert accumulator.length_histogram() == streak_length_histogram(serial)
        assert accumulator.streak_count == len(serial)
        assert accumulator.longest == max(s.length for s in serial)

    @pytest.mark.parametrize("chunk_size", [7, 64])
    def test_sharded_is_byte_identical(self, day_log, streak_result, chunk_size):
        sharded = analyze_corpora(
            {"day": day_log},
            metrics=("streaks",),
            workers=2,
            chunk_size=chunk_size,
        )
        assert sharded.study == streak_result.study
        assert sharded.render("text") == streak_result.render("text")

    def test_streamed_ingestion_is_byte_identical(
        self, tmp_path, day_log, streak_result
    ):
        path = tmp_path / "day.rq"
        path.write_text(
            "\n".join(text.replace("\n", "\\n") for text in day_log) + "\n",
            encoding="utf-8",
        )
        for stream in (False, True):
            request = AnalysisRequest(
                inputs=(path,), metrics=("streaks",), stream=stream, chunk_size=13
            )
            result = AnalysisSession().run(request)
            assert (
                result.study.datasets["day"].streaks
                == streak_result.study.datasets["day"].streaks
            )

    def test_custom_window_and_threshold_thread_through(self, day_log):
        result = analyze_corpora(
            {"day": day_log},
            metrics=("streaks",),
            streak_window=5,
            streak_threshold=0.1,
            workers=2,
            chunk_size=17,
        )
        accumulator = result.study.datasets["day"].streaks
        assert accumulator.window == 5
        assert accumulator.threshold == 0.1
        serial = find_streaks(day_log, window=5, threshold=0.1)
        assert accumulator.length_histogram() == streak_length_histogram(serial)

    def test_streaks_combine_with_per_query_passes(self, day_log):
        both = analyze_corpora({"day": day_log}, metrics=("shallow", "streaks"))
        assert both.study.query_count > 0  # shallow ran
        assert both.study.datasets["day"].streaks is not None
        alone = analyze_corpora({"day": day_log}, metrics=("streaks",))
        assert alone.study.query_count == 0  # no per-query pass ran
        assert (
            alone.study.datasets["day"].streaks
            == both.study.datasets["day"].streaks
        )

    def test_default_metrics_skip_streaks(self, day_log):
        result = analyze_corpora({"day": day_log[:40]})
        assert result.study.datasets["day"].streaks is None
        assert render_table6_from_study(result.study) is None

    def test_unknown_metric_still_rejected(self):
        with pytest.raises(ValueError, match="unknown metrics"):
            AnalysisRequest(corpora={"d": []}, metrics=("streeks",)).validate()

    def test_mixed_streak_shards_rejected(self, day_log):
        """A streak-bearing shard merged with a streak-less shard of the
        same dataset must fail loudly: its partial accumulator does not
        cover the merged stream, and reporting it as Table 6 for the
        whole dataset would be silently wrong."""
        half = len(day_log) // 2
        with_streaks = analyze_corpora({"day": day_log[:half]}, metrics=("streaks",))
        without = analyze_corpora({"day": day_log[half:]})
        with pytest.raises(ValueError, match="streak state covers"):
            merge_studies([with_streaks.study, without.study])
        with pytest.raises(ValueError, match="streak state covers"):
            merge_studies([
                analyze_corpora({"day": day_log[:half]}).study,
                analyze_corpora({"day": day_log[half:]}, metrics=("streaks",)).study,
            ])

    def test_unclaimed_sequence_results_rejected(self):
        """A sequence pass whose results nothing in the study layer
        claims must raise, not silently vanish from the study."""
        from repro.analysis.streaks import StreakAccumulator
        from repro.analysis.study import study_corpus
        from repro.logs import build_query_log

        log = build_query_log("day", ["ASK { ?s ?p ?o }"])
        log.sequences["novel_pass"] = StreakAccumulator()
        with pytest.raises(TypeError, match="novel_pass"):
            study_corpus({"day": log})

    def test_empty_corpus_still_attaches_empty_state(self):
        """Zero entries produce zero chunks, but a selected sequence
        metric must still come back as (empty) accumulator state — an
        empty log is a valid ordered stream with no streaks."""
        result = analyze_corpora({"day": []}, metrics=("streaks",))
        accumulator = result.study.datasets["day"].streaks
        assert accumulator is not None
        assert accumulator.streak_count == 0
        assert "Table 6" in render_table6_from_study(result.study)


class TestSnapshots:
    def test_round_trip_equality_and_bytes(self, streak_result):
        study = streak_result.study
        reloaded = study_from_dict(json.loads(json.dumps(study.to_dict())))
        assert reloaded == study
        assert reloaded.datasets["day"].streaks == study.datasets["day"].streaks

    def test_table6_renders_identically_from_reloaded_snapshot(
        self, tmp_path, streak_result
    ):
        path = tmp_path / "study.json"
        streak_result.save(path)
        reloaded = load_study(path)
        block = render_table6_from_study(reloaded)
        assert block == render_table6_from_study(streak_result.study)
        assert block in streak_result.render("text")

    def test_shard_snapshots_stitch_to_full_run(
        self, tmp_path, day_log, streak_result
    ):
        half = len(day_log) // 2
        first = analyze_corpora({"day": day_log[:half]}, metrics=("streaks",))
        second = analyze_corpora({"day": day_log[half:]}, metrics=("streaks",))
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_study(first.study, a)
        save_study(second.study, b)
        merged = merge_studies([load_study(a), load_study(b)])
        full = streak_result.study.datasets["day"].streaks
        assert merged.datasets["day"].streaks == full
        assert render_table6_from_study(merged) == render_table6_from_study(
            streak_result.study
        )

    def test_schema_is_bumped(self, streak_result):
        assert SCHEMA_VERSION == 3
        assert streak_result.study.to_dict()["schema"] == 3

    def test_schema_one_snapshots_still_load(self, streak_result):
        data = json.loads(json.dumps(streak_result.study.to_dict()))
        data["schema"] = 1
        for stats in data["datasets"].values():
            del stats["streaks"]  # schema 1 predates the field
        loaded = study_from_dict(data)
        assert loaded.datasets["day"].streaks is None

    def test_malformed_streaks_rejected(self, streak_result):
        data = json.loads(json.dumps(streak_result.study.to_dict()))
        data["datasets"]["day"]["streaks"]["chains"] = [{"positions": []}]
        with pytest.raises(StudySnapshotError, match="streaks"):
            study_from_dict(data)

    def test_mistyped_streaks_rejected(self, streak_result):
        data = json.loads(json.dumps(streak_result.study.to_dict()))
        data["datasets"]["day"]["streaks"] = ["not", "an", "object"]
        with pytest.raises(StudySnapshotError, match="expected an object"):
            study_from_dict(data)

    @pytest.mark.parametrize(
        "corrupt, message",
        [
            ({"closed": [[0, 1]]}, "positive int"),
            ({"closed": [[3, -1]]}, "negative"),
            ({"chains": [{"positions": [5, 3], "tail": "x"}]},
             "strictly increasing"),
            ({"chains": [{"positions": [10**9], "tail": "x"}]},
             "strictly increasing"),
            ({"head": []}, "min\\(window, length\\)"),
            ({"length": -1}, "must be >= 0"),
            ({"threshold": 100.0}, "within \\[0, 1\\]"),
            ({"threshold": float("nan")}, "within \\[0, 1\\]"),
        ],
    )
    def test_cross_field_invariants_rejected(self, streak_result, corrupt, message):
        """Type-correct but internally inconsistent streak state must
        fail at load as StudySnapshotError, not as wrong Table 6
        numbers (or a bucket_label ValueError) after a later merge."""
        data = json.loads(json.dumps(streak_result.study.to_dict()))
        data["datasets"]["day"]["streaks"].update(corrupt)
        with pytest.raises(StudySnapshotError, match=message):
            study_from_dict(data)


class TestReporters:
    def test_text_report_contains_table6_block(self, streak_result):
        text = streak_result.render("text")
        assert "Table 6: Length of streaks in single-day log files" in text
        assert "longest streak:" in text

    def test_markdown_report_contains_table6(self, streak_result):
        markdown = streak_result.render("markdown")
        assert "## Table 6: Length of streaks in single-day log files" in markdown
        assert "Longest streak:" in markdown

    def test_csv_report_contains_table6_rows(self, streak_result):
        rows = [
            line.split(",")
            for line in streak_result.render("csv").splitlines()
            if line.startswith("table6,")
        ]
        assert len(rows) == 13  # 11 buckets + total + longest
        assert all(row[2] == "day" for row in rows)

    def test_jsonl_report_digests_streaks(self, streak_result):
        record = json.loads(streak_result.render("jsonl").splitlines()[0])
        assert record["streaks"]["count"] > 0
        assert record["streaks"]["longest"] > 0
        assert "1-10" in record["streaks"]["histogram"]

    def test_jsonl_without_streaks_has_no_key(self, day_log):
        result = analyze_corpora({"day": day_log[:20]})
        record = json.loads(result.render("jsonl").splitlines()[0])
        assert "streaks" not in record

    def test_json_report_round_trips_streaks(self, streak_result):
        reloaded = study_from_dict(json.loads(streak_result.render("json")))
        assert reloaded == streak_result.study
