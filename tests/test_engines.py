"""Unit tests for the engine profiles and workload running (Figure 3)."""

import pytest

from repro.engine import IndexedEngine, NestedLoopEngine, QueryRunResult
from repro.exceptions import EvaluationTimeout
from repro.workload import generate_graph, generate_workload


class TestRun:
    def test_run_reports_elapsed(self, social_graph):
        engine = IndexedEngine(social_graph)
        result = engine.run("ASK { <urn:alice> <urn:knows> <urn:bob> }")
        assert result.result is True
        assert result.elapsed >= 0
        assert not result.timed_out

    def test_elapsed_ns(self, social_graph):
        result = IndexedEngine(social_graph).run("ASK { ?s ?p ?o }")
        assert result.elapsed_ns == pytest.approx(result.elapsed * 1e9)

    def test_timeout_recorded_not_raised(self, small_graph):
        engine = NestedLoopEngine(small_graph, timeout=1e-9)
        result = engine.run(
            "SELECT * WHERE { ?a ?b ?c . ?c ?d ?e . ?e ?f ?g . ?g ?h ?i }"
        )
        assert result.timed_out
        assert result.elapsed == engine.timeout

    def test_evaluate_raises_timeout(self, small_graph):
        engine = NestedLoopEngine(small_graph, timeout=1e-9)
        with pytest.raises(EvaluationTimeout):
            engine.evaluate(
                "SELECT * WHERE { ?a ?b ?c . ?c ?d ?e . ?e ?f ?g . ?g ?h ?i }"
            )

    def test_no_timeout_without_limit(self, small_graph):
        engine = IndexedEngine(small_graph)  # timeout=None
        result = engine.run("SELECT * WHERE { ?a ?b ?c } LIMIT 5")
        assert not result.timed_out


class TestWorkloads:
    def test_run_workload_aggregates(self, schema, small_graph):
        workload = generate_workload(schema, "chain", 3, 4, seed=3)
        engine = IndexedEngine(small_graph, timeout=5.0)
        result = engine.run_workload([q.text for q in workload], label="chain-3")
        assert result.engine == "BG"
        assert result.workload == "chain-3"
        assert len(result.runs) == 4
        assert result.average_elapsed > 0
        assert result.timeout_count == 0
        assert result.timeout_rate == 0.0

    def test_engines_agree_on_ask_results(self, schema, small_graph):
        workload = generate_workload(schema, "chain", 3, 5, seed=9)
        bg = IndexedEngine(small_graph, timeout=10.0)
        pg = NestedLoopEngine(small_graph, timeout=10.0)
        for query in workload:
            a = bg.run(query.text)
            b = pg.run(query.text)
            if not (a.timed_out or b.timed_out):
                assert a.result == b.result, query.text

    def test_indexed_faster_than_scan_on_joins(self, schema):
        """The Figure 3 mechanism: index joins beat nested-loop scans."""
        graph = generate_graph(schema, 400, seed=11)
        workload = generate_workload(schema, "chain", 4, 3, seed=5)
        texts = [q.text for q in workload]
        bg = IndexedEngine(graph, timeout=30.0).run_workload(texts)
        pg = NestedLoopEngine(graph, timeout=30.0).run_workload(texts)
        assert bg.average_elapsed < pg.average_elapsed

    def test_empty_workload(self, small_graph):
        result = IndexedEngine(small_graph).run_workload([], label="empty")
        assert result.average_elapsed == 0.0
        assert result.timeout_rate == 0.0


class TestQueryRunResult:
    def test_frozen(self):
        result = QueryRunResult(elapsed=1.0, timed_out=False)
        with pytest.raises(AttributeError):
            result.elapsed = 2.0
