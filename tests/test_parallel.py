"""Merge semantics and sharded execution: serial ≡ parallel.

The contract under test: splitting any stream into chunks, processing
the chunks independently, and merging the partial accumulators in
stream order reproduces the single-pass result exactly — Table 1
counters, histograms, fragment counts, and the rendered report bytes.
"""

from collections import Counter
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.parallel import (
    build_query_log_parallel,
    build_query_logs_parallel,
    default_chunk_size,
    iter_chunks,
    measure_chunk,
    merge_shards,
    merge_studies,
    study_corpus_parallel,
)
from repro.analysis.study import (
    CorpusStudy,
    DatasetStats,
    measure_query,
    study_corpus,
)
from repro.logs import LogShard, ParseCache, build_query_log, process_entries
from repro.reporting import render_study
from repro.sparql import serialize_query
from repro.workload import generate_corpus


@lru_cache(maxsize=1)
def corpus_entries():
    """A small bundled corpus: 13 datasets, a few hundred raw entries."""
    return generate_corpus(scale=4e-6, seed=0)


@lru_cache(maxsize=1)
def corpus_logs():
    return {
        name: build_query_log(name, entries)
        for name, entries in corpus_entries().items()
    }


@lru_cache(maxsize=1)
def serial_study():
    return study_corpus(corpus_logs(), dedup=True)


def split_at(items, cuts):
    """Split *items* into contiguous shards at sorted cut positions."""
    items = list(items)
    bounds = [0] + sorted(min(c, len(items)) for c in cuts) + [len(items)]
    return [items[lo:hi] for lo, hi in zip(bounds, bounds[1:])]


def assert_logs_equal(a, b):
    assert a.summary_row() == b.summary_row()
    assert [(p.text, p.count) for p in a.parsed] == [
        (p.text, p.count) for p in b.parsed
    ]


# ---------------------------------------------------------------------------
# Pipeline sharding (two-phase dedup)
# ---------------------------------------------------------------------------


class TestLogShardMerge:
    def test_merge_identity(self):
        shard = process_entries(["ASK { ?s ?p ?o }", "junk {"])
        merged = merge_shards([shard, LogShard()])
        assert merged.total == 2 and merged.valid == 1

    def test_two_phase_dedup_across_shards(self):
        # The duplicate pair straddles the shard boundary: only the
        # merged text→count maps see the full multiplicity.
        left = process_entries(["ASK { ?s ?p ?o }", "SELECT * WHERE { ?a ?b ?c }"])
        right = process_entries(["ASK { ?s ?p ?o }"])
        log = merge_shards([left, right]).to_query_log("t")
        assert log.total == 3 and log.valid == 3 and log.unique == 2
        assert [p.count for p in log.parsed] == [2, 1]

    def test_order_is_global_first_occurrence(self):
        shards = [
            process_entries(["ASK { ?b ?p ?o }"]),
            process_entries(["ASK { ?a ?p ?o }", "ASK { ?b ?p ?o }"]),
        ]
        log = merge_shards(shards).to_query_log("t")
        assert [p.text for p in log.parsed] == [
            "ASK { ?b ?p ?o }",
            "ASK { ?a ?p ?o }",
        ]

    @settings(max_examples=30, deadline=None)
    @given(cuts=st.lists(st.integers(min_value=0, max_value=2000), max_size=6))
    def test_shard_merge_equals_single_pass(self, cuts):
        for name, entries in corpus_entries().items():
            shards = [process_entries(s) for s in split_at(entries, cuts)]
            assert_logs_equal(
                merge_shards(shards).to_query_log(name), corpus_logs()[name]
            )

    def test_parallel_build_matches_serial(self):
        for name, entries in corpus_entries().items():
            assert_logs_equal(
                build_query_log_parallel(name, entries, workers=2, chunk_size=7),
                corpus_logs()[name],
            )

    def test_batched_corpus_build_matches_serial(self):
        # All datasets through one pool, including with a chunk size
        # that splits some datasets and leaves others whole.
        logs = build_query_logs_parallel(corpus_entries(), workers=2, chunk_size=11)
        assert set(logs) == set(corpus_logs())
        for name, log in logs.items():
            assert_logs_equal(log, corpus_logs()[name])

    def test_build_query_log_workers_kwarg(self):
        name, entries = next(iter(corpus_entries().items()))
        assert_logs_equal(
            build_query_log(name, entries, workers=2), corpus_logs()[name]
        )

    def test_prewarmed_cache_keeps_occurrence_order(self):
        # A shared cache must not leak first-occurrence order between
        # streams: a text cached earlier still dedups per-stream.
        cache = ParseCache()
        process_entries(["ASK { ?z ?p ?o }"], cache=cache)
        shard = process_entries(["ASK { ?a ?p ?o }", "ASK { ?z ?p ?o }"], cache=cache)
        assert shard.order == ["ASK { ?a ?p ?o }", "ASK { ?z ?p ?o }"]
        assert cache.hits == 1 and cache.misses == 2


class TestParseCache:
    def test_rejects_mixed_prefix_environments(self):
        # Entries are keyed by text only, so reuse under different
        # prefixes must fail loudly instead of returning wrong ASTs.
        cache = ParseCache()
        cache.parse("ASK { ?s ?p ?o }", {"foo": "urn:a#"})
        with pytest.raises(ValueError):
            cache.parse("ASK { ?s ?p ?o }", {"foo": "urn:b#"})
        # The same environment keeps working, same or distinct object.
        assert cache.parse("ASK { ?s ?p ?o }", {"foo": "urn:a#"}) is not None

    def test_hit_miss_accounting(self):
        cache = ParseCache()
        assert cache.parse("ASK { ?s ?p ?o }") is not None
        assert cache.parse("ASK { ?s ?p ?o }") is not None
        assert cache.parse("BROKEN {") is None
        assert cache.parse("BROKEN {") is None  # failures are cached too
        assert cache.hits == 2 and cache.misses == 2
        assert len(cache) == 2 and "BROKEN {" in cache


# ---------------------------------------------------------------------------
# Study sharding
# ---------------------------------------------------------------------------


class TestStudyMerge:
    @settings(max_examples=25, deadline=None)
    @given(cuts=st.lists(st.integers(min_value=0, max_value=500), max_size=5))
    def test_shard_merge_reproduces_single_pass(self, cuts):
        logs = corpus_logs()
        merged = CorpusStudy(dedup=True)
        for name, log in logs.items():
            merged.datasets[name] = DatasetStats(
                name=name, total=log.total, valid=log.valid, unique=log.unique
            )
            for shard in split_at(log.unique_queries(), cuts):
                merged.merge(measure_chunk(name, shard))
        expected = serial_study()
        assert render_study(merged, logs) == render_study(expected, logs)
        for name in logs:
            a, b = merged.datasets[name], expected.datasets[name]
            assert a.triple_hist == b.triple_hist
            assert a.keyword_counts == b.keyword_counts
            assert (a.total, a.valid, a.unique, a.queries) == (
                b.total,
                b.valid,
                b.unique,
                b.queries,
            )
        assert merged.operator_sets == expected.operator_sets
        assert merged.shape_counts == expected.shape_counts
        assert merged.treewidth_counts == expected.treewidth_counts
        assert merged.girth_hist == expected.girth_hist
        assert (merged.aof_count, merged.cq_count, merged.cqf_count,
                merged.cqof_count) == (expected.aof_count, expected.cq_count,
                                       expected.cqf_count, expected.cqof_count)
        assert merged.non_ctract == expected.non_ctract

    def test_workers4_byte_identical_report(self):
        logs = corpus_logs()
        parallel = study_corpus(logs, dedup=True, workers=4)
        assert render_study(parallel, logs) == render_study(serial_study(), logs)

    def test_workers2_valid_corpus(self):
        logs = corpus_logs()
        serial = study_corpus(logs, dedup=False)
        parallel = study_corpus_parallel(logs, dedup=False, workers=2, chunk_size=5)
        assert render_study(parallel, logs) == render_study(serial, logs)

    def test_fork_shared_slices_match_chunk_payloads(self):
        # The fork path ships (name, start, stop) index slices through
        # inherited memory; it must reproduce the pickled-chunk path
        # (and the serial pass) exactly, and clean up the shared state.
        from repro.analysis import parallel as par

        logs = corpus_logs()
        result = study_corpus_parallel(logs, dedup=True, workers=2, chunk_size=7)
        assert par._SHARED_LOGS is None
        assert render_study(result, logs) == render_study(serial_study(), logs)

    def test_serial_fallback_is_executor_free(self):
        # workers=1 through the parallel driver must not need pickling
        # or subprocesses, and still matches the plain serial pass.
        logs = corpus_logs()
        result = study_corpus_parallel(logs, dedup=True, workers=1, chunk_size=3)
        assert render_study(result, logs) == render_study(serial_study(), logs)

    def test_merge_rejects_mixed_corpora(self):
        with pytest.raises(ValueError):
            CorpusStudy(dedup=True).merge(CorpusStudy(dedup=False))

    def test_dataset_merge_rejects_name_mismatch(self):
        with pytest.raises(ValueError):
            DatasetStats(name="a").merge(DatasetStats(name="b"))


class TestMeasureQuery:
    def test_pure_and_repeatable(self):
        log = build_query_log("t", ["SELECT DISTINCT ?x WHERE { ?x <urn:p> ?y }"])
        (parsed,) = log.parsed
        before = serialize_query(parsed.query)
        one = measure_query(parsed, "t")
        two = measure_query(parsed, "t")
        assert serialize_query(parsed.query) == before
        assert one.query_count == two.query_count == 1
        assert one.keyword_counts == two.keyword_counts
        assert one.datasets["t"].queries == 1

    def test_fold_equals_study_corpus(self):
        name = "DBpedia14"
        log = corpus_logs()[name]
        folded = merge_studies(
            measure_query(p, name) for p in log.unique_queries()
        )
        folded.datasets[name].total = log.total
        folded.datasets[name].valid = log.valid
        folded.datasets[name].unique = log.unique
        single = study_corpus({name: log})
        assert render_study(folded, {name: log}) == render_study(single, {name: log})

    def test_weight_controls_multiplicity(self):
        log = build_query_log("t", ["ASK { ?s ?p ?o }"] * 3)
        (parsed,) = log.parsed
        weighted = measure_query(parsed, "t", weight=parsed.count, dedup=False)
        assert weighted.query_count == 3


# ---------------------------------------------------------------------------
# Zero-count histogram regression (Counter.__add__ drops zero keys)
# ---------------------------------------------------------------------------


class TestZeroCountMerge:
    def test_counter_add_drops_zero_keys(self):
        # The latent bug class this merge scheme avoids.
        assert 3 not in Counter({3: 0}) + Counter({1: 2})

    def test_dataset_merge_preserves_zero_buckets(self):
        a = DatasetStats(name="d")
        a.triple_hist[3] = 0  # explicitly recorded empty bucket
        a.keyword_counts["Union"] = 0
        b = DatasetStats(name="d")
        b.triple_hist[1] = 2
        a.merge(b)
        assert a.triple_hist[1] == 2
        assert 3 in a.triple_hist and a.triple_hist[3] == 0
        assert "Union" in a.keyword_counts

    def test_zero_buckets_survive_from_either_side(self):
        a = DatasetStats(name="d")
        b = DatasetStats(name="d")
        b.triple_hist[7] = 0
        a.merge(b)
        assert 7 in a.triple_hist

    def test_study_merge_preserves_zero_buckets(self):
        a = CorpusStudy()
        a.girth_hist[4] = 0
        a.treewidth_counts["CQ"][2] = 0
        b = CorpusStudy()
        b.girth_hist[3] = 1
        a.merge(b)
        assert 4 in a.girth_hist and a.girth_hist[3] == 1
        assert 2 in a.treewidth_counts["CQ"]


# ---------------------------------------------------------------------------
# Chunking utilities
# ---------------------------------------------------------------------------


class TestChunking:
    def test_iter_chunks_partitions(self):
        assert list(iter_chunks(list(range(7)), 3)) == [[0, 1, 2], [3, 4, 5], [6]]
        assert list(iter_chunks([], 3)) == []

    def test_iter_chunks_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks([1], 0))

    def test_imap_bounded_validates_workers_eagerly(self):
        from repro.analysis.parallel import imap_bounded

        with pytest.raises(ValueError):
            imap_bounded(len, iter([[1], [2]]), 0)

    def test_iter_chunks_validates_eagerly(self):
        # Misuse fails at the call site, before any stream is consumed.
        with pytest.raises(ValueError):
            iter_chunks(iter([1]), -2)

    def test_iter_chunks_accepts_one_shot_iterators(self):
        assert list(iter_chunks(iter(range(5)), 2)) == [[0, 1], [2, 3], [4]]

    def test_iter_chunks_is_lazy(self):
        consumed = []

        def source():
            for n in range(100):
                consumed.append(n)
                yield n

        chunks = iter_chunks(source(), 10)
        assert next(chunks) == list(range(10))
        # One chunk pulled, one chunk consumed: no read-ahead.
        assert len(consumed) == 10

    def test_default_chunk_size(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(100, 1) == 25
        # ~4 chunks per worker
        n, workers = 1000, 4
        size = default_chunk_size(n, workers)
        assert -(-n // size) == workers * 4
