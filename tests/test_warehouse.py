"""Tests for the persistent study warehouse (store + CLI verbs).

The contract under test (ISSUE 9 acceptance criteria):

* ingest is an upsert through ``CorpusStudy.merge``: re-ingesting a
  shard is idempotent, and ``ingest(a); ingest(b)`` leaves exactly the
  state of ``ingest(merge(a, b))`` (property-tested);
* a warehouse-served report is byte-identical to ``repro report`` on
  the equivalently merged snapshot — the warehouse never re-runs
  analysis, and per-table text blocks are byte-exact slices of it;
* the indexed tables (datasets, cells, streaks, caveats, search)
  answer without touching the study document;
* a corrupt or foreign warehouse file raises ``WarehouseError`` (CLI:
  a one-line message and exit 2), never a traceback.
"""

import json
import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.passes import PASS_NAMES
from repro.api import analyze_corpora, open_warehouse
from repro.cli import main
from repro.exceptions import ReproError, WarehouseError
from repro.reporting import render_report
from repro.warehouse import WAREHOUSE_SCHEMA_VERSION, StudyWarehouse

QUERY_POOL = [
    "SELECT ?x WHERE { ?x <urn:p> ?y }",
    "SELECT DISTINCT ?x WHERE { ?x <urn:p> ?y . ?y <urn:q> ?z }",
    "ASK { ?a <urn:q> ?b . ?b <urn:r> ?a }",
    "ASK { ?s <urn:p>+ ?o }",
    "SELECT * WHERE { ?s ?p ?o . FILTER(?o > 3) }",
    "SELECT ?s WHERE { ?s <urn:p> ?o . OPTIONAL { ?s <urn:q> ?t } }",
    "SELECT ?s WHERE { { ?s <urn:a> ?o } UNION { ?s <urn:b> ?o } }",
    "CONSTRUCT { ?s <urn:p> ?o } WHERE { ?s <urn:p> ?o }",
    "not a query at all {",
]

#: Every per-query pass plus the opt-in streaks sequence pass, so the
#: warehouse carries Table 6 data and streak texts to search.
ALL_METRICS = PASS_NAMES + ("streaks",)


def build_study(texts_by_dataset, metrics=ALL_METRICS):
    return analyze_corpora(texts_by_dataset, metrics=metrics).study


@pytest.fixture(scope="module")
def shard_studies():
    study_a = build_study({"alpha": QUERY_POOL + QUERY_POOL[:4]})
    study_b = build_study({"beta": QUERY_POOL[:6]})
    return study_a, study_b


@pytest.fixture()
def warehouse(tmp_path, shard_studies):
    study_a, study_b = shard_studies
    with StudyWarehouse.open(tmp_path / "study.warehouse") as handle:
        handle.ingest(study_a, source="alpha.json")
        handle.ingest(study_b, source="beta.json")
        yield handle


class TestIngest:
    def test_outcomes_and_idempotency(self, tmp_path, shard_studies):
        study_a, study_b = shard_studies
        with StudyWarehouse.open(tmp_path / "w.db") as handle:
            assert handle.ingest(study_a) == "merged"
            assert handle.ingest(study_a) == "unchanged"
            assert handle.ingest(study_b) == "merged"
            assert handle.ingest(study_a) == "unchanged"
            assert handle.generation == 2

    def test_incremental_equals_merged(self, tmp_path, shard_studies):
        study_a, study_b = shard_studies
        # merge() mutates its left side — merge fresh copies, never the
        # module-scoped fixture studies.
        merged = build_study({"alpha": QUERY_POOL + QUERY_POOL[:4]}).merge(
            build_study({"beta": QUERY_POOL[:6]})
        )
        with StudyWarehouse.open(tmp_path / "inc.db") as incremental:
            incremental.ingest(study_a)
            incremental.ingest(study_b)
            with StudyWarehouse.open(tmp_path / "one.db") as oneshot:
                oneshot.ingest(merged)
                assert incremental.render("text") == oneshot.render("text")

    def test_ingest_does_not_mutate_caller_study(self, tmp_path):
        study_a = build_study({"alpha": QUERY_POOL})
        before = render_report(study_a, "json")
        with StudyWarehouse.open(tmp_path / "w.db") as handle:
            handle.ingest(study_a)
            handle.ingest(build_study({"beta": QUERY_POOL[:3]}))
        assert render_report(study_a, "json") == before

    def test_incompatible_flavour_rejected_and_rolled_back(self, tmp_path):
        unique = build_study({"alpha": QUERY_POOL})
        valid = analyze_corpora({"beta": QUERY_POOL[:3]}, dedup=False).study
        with StudyWarehouse.open(tmp_path / "w.db") as handle:
            handle.ingest(unique, source="alpha.json")
            before = handle.render("text")
            with pytest.raises(WarehouseError, match="beta.json"):
                handle.ingest(valid, source="beta.json")
            assert handle.render("text") == before
            assert handle.generation == 1

    def test_readonly_handle_rejects_ingest(self, tmp_path, shard_studies):
        path = tmp_path / "w.db"
        with StudyWarehouse.open(path) as handle:
            handle.ingest(shard_studies[0])
        with StudyWarehouse.open(path, readonly=True) as handle:
            with pytest.raises(WarehouseError, match="read-only"):
                handle.ingest(shard_studies[1])

    @settings(max_examples=15, deadline=None)
    @given(
        split=st.integers(min_value=1, max_value=len(QUERY_POOL) - 1),
        data=st.data(),
    )
    def test_ingest_commutes_with_merge(self, tmp_path_factory, split, data):
        """``ingest(a); ingest(b)`` ≡ ``ingest(merge(a, b))`` in bytes."""
        pool_a = QUERY_POOL[:split]
        pool_b = QUERY_POOL[split:]
        name_a = data.draw(st.sampled_from(["alpha", "shared"]))
        name_b = data.draw(st.sampled_from(["beta", "shared"]))
        tmp = tmp_path_factory.mktemp("commute")
        study_a = build_study({name_a: pool_a})
        study_b = build_study({name_b: pool_b})
        merged = build_study({name_a: pool_a}).merge(study_b)
        with StudyWarehouse.open(tmp / "steps.db") as stepwise:
            stepwise.ingest(study_a)
            stepwise.ingest(study_b)
            with StudyWarehouse.open(tmp / "once.db") as oneshot:
                oneshot.ingest(merged)
                assert stepwise.render("text") == oneshot.render("text")
                assert stepwise.render("json") == oneshot.render("json")


class TestReports:
    def test_render_byte_identical_to_direct_report(self, warehouse, shard_studies):
        study_a, study_b = shard_studies
        merged = build_study({"alpha": QUERY_POOL + QUERY_POOL[:4]}).merge(study_b)
        for format in ("text", "json", "csv", "markdown"):
            assert warehouse.render(format) == render_report(merged, format)

    def test_table_text_is_slice_of_full_report(self, warehouse):
        report = warehouse.render("text")
        for table in range(1, 7):
            assert warehouse.table_text(table) in report

    def test_unknown_table(self, warehouse):
        with pytest.raises(WarehouseError, match="tables 1-6"):
            warehouse.table_text(9)

    def test_table6_without_streak_data(self, tmp_path):
        study = build_study({"alpha": QUERY_POOL}, metrics=None)
        with StudyWarehouse.open(tmp_path / "w.db") as handle:
            handle.ingest(study)
            with pytest.raises(WarehouseError, match="streaks metric"):
                handle.table_text(6)

    def test_empty_warehouse(self, tmp_path):
        with StudyWarehouse.open(tmp_path / "w.db") as handle:
            with pytest.raises(WarehouseError, match="empty"):
                handle.render("text")


class TestIndexedQueries:
    def test_datasets_pagination(self, warehouse):
        total, items = warehouse.datasets()
        assert total == 2
        assert [row["name"] for row in items] == ["alpha", "beta"]
        assert items[0]["total"] == len(QUERY_POOL) + 4
        total, items = warehouse.datasets(limit=1, offset=1)
        assert total == 2
        assert [row["name"] for row in items] == ["beta"]

    def test_dataset_lookup(self, warehouse):
        assert warehouse.dataset("alpha")["name"] == "alpha"
        assert warehouse.dataset("missing") is None

    def test_table_cells_scoped_by_dataset(self, warehouse):
        total, cells = warehouse.table_cells(1)
        assert total > 0
        assert {cell["section"] for cell in cells} == {"table1"}
        scoped_total, scoped = warehouse.table_cells(1, dataset="alpha")
        assert 0 < scoped_total < total
        assert {cell["row"] for cell in scoped} == {"alpha"}

    def test_streak_histograms(self, warehouse):
        total, items = warehouse.streak_histograms()
        assert total == 2
        by_name = {row["dataset"]: row for row in items}
        assert by_name["alpha"]["streak_count"] > 0
        assert list(by_name["alpha"]["histogram"])[0] == "1-10"

    def test_caveats(self, warehouse):
        caveats = warehouse.caveats()
        assert set(caveats) == {"non_ctract_truncated", "shape_limit_skipped"}

    def test_search(self, warehouse):
        total, items = warehouse.search("urn")
        assert total > 0
        assert all("urn" in row["text"] for row in items)
        paged_total, paged = warehouse.search("urn", limit=1, offset=1)
        assert paged_total == total
        assert len(paged) == 1

    def test_search_rejects_empty_term(self, warehouse):
        with pytest.raises(WarehouseError):
            warehouse.search("   ")

    def test_stats(self, warehouse):
        stats = warehouse.stats()
        assert stats["warehouse_schema"] == WAREHOUSE_SCHEMA_VERSION
        assert stats["corpus"] == "Unique"
        assert stats["ingests"] == 2
        assert stats["datasets"] == 2
        assert stats["cells"] > 0

    def test_ingest_log(self, warehouse):
        log = warehouse.ingest_log()
        assert [entry["source"] for entry in log] == ["alpha.json", "beta.json"]
        assert log[0]["datasets"] == ["alpha"]


class TestOpenErrors:
    def test_missing_file_readonly(self, tmp_path):
        with pytest.raises(WarehouseError, match="no such warehouse"):
            StudyWarehouse.open(tmp_path / "nope.db", readonly=True)

    def test_not_a_database(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_bytes(b"this is not sqlite at all\n" * 64)
        with pytest.raises(WarehouseError, match="not a usable warehouse"):
            StudyWarehouse.open(path)

    def test_foreign_sqlite_database(self, tmp_path):
        path = tmp_path / "foreign.db"
        with sqlite3.connect(path) as connection:
            connection.execute("CREATE TABLE users (id INTEGER PRIMARY KEY)")
        with pytest.raises(WarehouseError, match="foreign"):
            StudyWarehouse.open(path)

    def test_future_schema_version(self, tmp_path, shard_studies):
        path = tmp_path / "future.db"
        with StudyWarehouse.open(path) as handle:
            handle.ingest(shard_studies[0])
        with sqlite3.connect(path) as connection:
            connection.execute("PRAGMA user_version = 99")
        with pytest.raises(WarehouseError, match="unsupported warehouse schema 99"):
            StudyWarehouse.open(path)

    def test_errors_are_repro_errors(self):
        assert issubclass(WarehouseError, ReproError)


class TestFacade:
    def test_open_warehouse(self, tmp_path, shard_studies):
        with open_warehouse(tmp_path / "w.db") as handle:
            assert handle.ingest(shard_studies[0]) == "merged"
        with open_warehouse(tmp_path / "w.db", readonly=True) as handle:
            assert handle.stats()["ingests"] == 1


@pytest.fixture()
def snapshot_files(tmp_path):
    study_a = build_study({"alpha": QUERY_POOL + QUERY_POOL[:4]})
    study_b = build_study({"beta": QUERY_POOL[:6]})
    path_a = tmp_path / "a.json.gz"
    path_b = tmp_path / "b.json"
    from repro.api import save_study

    save_study(study_a, path_a)
    save_study(study_b, path_b)
    return path_a, path_b


class TestWarehouseCli:
    def test_ingest_and_query_round_trip(self, tmp_path, snapshot_files, capsys):
        path_a, path_b = snapshot_files
        store = tmp_path / "study.warehouse"
        assert main(["warehouse", "ingest", str(store), str(path_a), str(path_b)]) == 0
        out = capsys.readouterr().out
        assert out.count("merged") == 2
        assert "2 dataset(s) from 2 snapshot(s)" in out

        # Idempotent re-ingest of one shard.
        assert main(["warehouse", "ingest", str(store), str(path_a)]) == 0
        assert "unchanged" in capsys.readouterr().out

        # The warehouse-served report is byte-identical to merge+report.
        assert main(["warehouse", "query", str(store)]) == 0
        warehouse_report = capsys.readouterr().out
        merged = tmp_path / "merged.json"
        assert main(["merge", str(path_a), str(path_b), "--out", str(merged)]) == 0
        capsys.readouterr()
        assert main(["report", str(merged)]) == 0
        assert warehouse_report == capsys.readouterr().out

    def test_query_table_block(self, tmp_path, snapshot_files, capsys):
        path_a, path_b = snapshot_files
        store = tmp_path / "w.db"
        assert main(["warehouse", "ingest", str(store), str(path_a)]) == 0
        capsys.readouterr()
        assert main(["warehouse", "query", str(store), "--table", "1"]) == 0
        assert capsys.readouterr().out.startswith("Table 1")

    def test_query_cells_and_listings(self, tmp_path, snapshot_files, capsys):
        path_a, path_b = snapshot_files
        store = tmp_path / "w.db"
        assert main(["warehouse", "ingest", str(store), str(path_a), str(path_b)]) == 0
        capsys.readouterr()
        assert main(
            ["warehouse", "query", str(store), "--table", "4", "--dataset", "alpha"]
        ) == 0
        cells = json.loads(capsys.readouterr().out)
        assert cells["total"] > 0
        for flag in ("--datasets", "--streaks", "--caveats"):
            assert main(["warehouse", "query", str(store), flag]) == 0
            json.loads(capsys.readouterr().out)
        assert main(["warehouse", "query", str(store), "--search", "urn"]) == 0
        found = json.loads(capsys.readouterr().out)
        assert found["total"] > 0

    def test_stats_verb(self, tmp_path, snapshot_files, capsys):
        path_a, _ = snapshot_files
        store = tmp_path / "w.db"
        assert main(["warehouse", "ingest", str(store), str(path_a)]) == 0
        capsys.readouterr()
        assert main(["warehouse", "stats", str(store)]) == 0
        out = capsys.readouterr().out
        assert "corpus:          Unique" in out
        assert "snapshots:       1" in out

    def test_corrupt_warehouse_exits_2(self, tmp_path, capsys):
        path = tmp_path / "corrupt.db"
        path.write_bytes(b"not a database, just noise\n" * 32)
        assert main(["warehouse", "query", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("warehouse:")
        assert "Traceback" not in err

    def test_missing_warehouse_exits_2(self, tmp_path, capsys):
        assert main(["warehouse", "stats", str(tmp_path / "nope.db")]) == 2
        assert "no such warehouse" in capsys.readouterr().err

    def test_unreadable_snapshot_named_in_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        assert main(["warehouse", "ingest", str(tmp_path / "w.db"), str(bad)]) == 2
        err = capsys.readouterr().err
        assert "bad.json" in err

    def test_dataset_requires_table(self, tmp_path, snapshot_files, capsys):
        path_a, _ = snapshot_files
        store = tmp_path / "w.db"
        assert main(["warehouse", "ingest", str(store), str(path_a)]) == 0
        capsys.readouterr()
        assert main(["warehouse", "query", str(store), "--dataset", "alpha"]) == 2
        assert "--dataset requires --table" in capsys.readouterr().err

    def test_serve_missing_warehouse_exits_2(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope.db")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("serve:")
        assert "no such warehouse" in err
