"""The deprecation shims for relocated entry points must warn — and
keep working — until they are removed."""

import pytest

from repro.analysis import study as study_module
from repro.analysis.context import DEFAULT_SHAPE_NODE_LIMIT
from repro.analysis.passes import NON_CTRACT_LIMIT


class TestStudyAliases:
    def test_shape_node_limit_alias_warns_and_matches(self):
        with pytest.warns(DeprecationWarning, match="_SHAPE_NODE_LIMIT"):
            value = study_module._SHAPE_NODE_LIMIT
        assert value == DEFAULT_SHAPE_NODE_LIMIT

    def test_non_ctract_limit_alias_warns_and_matches(self):
        with pytest.warns(DeprecationWarning, match="_NON_CTRACT_LIMIT"):
            value = study_module._NON_CTRACT_LIMIT
        assert value == NON_CTRACT_LIMIT

    def test_warning_names_the_replacement(self):
        with pytest.warns(DeprecationWarning, match="AnalysisOptions"):
            study_module._SHAPE_NODE_LIMIT

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            study_module._NO_SUCH_ALIAS


class TestCliReadQueryFile:
    def test_warns_and_delegates(self, tmp_path):
        from repro.cli import read_query_file

        path = tmp_path / "q.rq"
        path.write_text("ASK { ?s ?p ?o }\n")
        with pytest.warns(DeprecationWarning, match="read_entries"):
            assert read_query_file(path) == ["ASK { ?s ?p ?o }"]

    def test_normal_cli_runs_do_not_warn(self, tmp_path, capsys, recwarn):
        from repro.cli import main

        path = tmp_path / "q.rq"
        path.write_text("ASK { ?s ?p ?o }\n")
        assert main(["analyze", str(path)]) == 0
        capsys.readouterr()
        assert not [
            warning
            for warning in recwarn.list
            if issubclass(warning.category, DeprecationWarning)
        ]
