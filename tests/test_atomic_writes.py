"""Durability tests for everything the package writes to disk.

The contract under test (ISSUE 7 satellite):

* :func:`repro.ioutils.atomic_write_text` publishes the full text or
  nothing — a failure at any point (including ``KeyboardInterrupt``)
  leaves the destination untouched and removes the temporary file;
* :func:`repro.analysis.snapshot.save_study` inherits that guarantee:
  a save killed mid-write never clobbers or truncates a snapshot that
  was already on disk, and the survivor still loads.
"""

import os

import pytest

import repro.ioutils as ioutils
from repro.analysis.snapshot import load_study, save_study
from repro.analysis.study import study_corpus
from repro.ioutils import atomic_write_text
from repro.logs import build_query_log

QUERIES = [
    "SELECT ?x WHERE { ?x <urn:p> ?y }",
    "SELECT DISTINCT ?x WHERE { ?x <urn:p> ?y . ?y <urn:q> ?z }",
    "ASK { ?s ?p ?o }",
    "SELECT * WHERE { ?a <urn:p> ?b . ?b <urn:p> ?c . ?c <urn:p> ?a }",
]


def tmp_leftovers(directory):
    return [p for p in directory.iterdir() if p.suffix == ".tmp"]


def small_study(texts):
    return study_corpus({"alpha": build_query_log("alpha", texts)})


class TestAtomicWriteText:
    def test_writes_exact_text_and_cleans_up(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello\nworld\n")
        assert target.read_text(encoding="utf-8") == "hello\nworld\n"
        assert list(tmp_path.iterdir()) == [target]

    def test_overwrites_existing_file(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old", encoding="utf-8")
        atomic_write_text(target, "new")
        assert target.read_text(encoding="utf-8") == "new"
        assert not tmp_leftovers(tmp_path)

    def test_accepts_str_paths(self, tmp_path):
        target = tmp_path / "strpath.txt"
        atomic_write_text(str(target), "via str")
        assert target.read_text(encoding="utf-8") == "via str"

    @pytest.mark.parametrize(
        "interrupt", [KeyboardInterrupt, RuntimeError, OSError]
    )
    def test_failed_replace_preserves_old_content(
        self, tmp_path, monkeypatch, interrupt
    ):
        target = tmp_path / "out.txt"
        target.write_text("the old content", encoding="utf-8")

        def exploding_replace(src, dst):
            raise interrupt("simulated kill mid-write")

        monkeypatch.setattr(ioutils.os, "replace", exploding_replace)
        with pytest.raises(interrupt):
            atomic_write_text(target, "half-finished new content")
        assert target.read_text(encoding="utf-8") == "the old content"
        assert not tmp_leftovers(tmp_path)

    def test_failure_before_any_file_exists_leaves_directory_empty(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "never-born.txt"
        monkeypatch.setattr(
            ioutils.os,
            "replace",
            lambda src, dst: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(RuntimeError):
            atomic_write_text(target, "doomed")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_real_replace_is_used(self, tmp_path):
        # Sanity: the helper goes through os.replace, which POSIX
        # guarantees is atomic within one filesystem.  The temp file is
        # created in the destination directory for exactly that reason.
        target = tmp_path / "out.txt"
        seen = []
        original = os.replace

        def spy(src, dst):
            seen.append((os.path.dirname(str(src)), str(dst)))
            return original(src, dst)

        try:
            ioutils.os.replace = spy
            atomic_write_text(target, "x")
        finally:
            ioutils.os.replace = original
        assert seen == [(str(tmp_path), str(target))]


class TestSaveStudyDurability:
    def test_kill_mid_save_keeps_previous_snapshot(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "study.json"
        first = small_study(QUERIES)
        save_study(first, path)
        before = path.read_bytes()

        second = small_study(QUERIES[:2])

        def killed(src, dst):
            raise KeyboardInterrupt("pulled the plug")

        monkeypatch.setattr(ioutils.os, "replace", killed)
        with pytest.raises(KeyboardInterrupt):
            save_study(second, path)

        assert path.read_bytes() == before
        assert load_study(path) == first
        assert not tmp_leftovers(tmp_path)

    def test_successful_resave_replaces_snapshot(self, tmp_path):
        path = tmp_path / "study.json"
        first = small_study(QUERIES)
        second = small_study(QUERIES[:2])
        save_study(first, path)
        save_study(second, path)
        assert load_study(path) == second
        assert not tmp_leftovers(tmp_path)

    def test_snapshot_never_observable_as_partial_json(
        self, tmp_path, monkeypatch
    ):
        # Readers polling the path during a save must only ever see
        # valid JSON: either the old snapshot or the new one.
        path = tmp_path / "study.json"
        save_study(small_study(QUERIES[:2]), path)

        observed = []
        original = os.replace

        def observing_replace(src, dst):
            observed.append(load_study(path))  # mid-save: old snapshot
            return original(src, dst)

        monkeypatch.setattr(ioutils.os, "replace", observing_replace)
        new = small_study(QUERIES)
        save_study(new, path)
        assert observed == [small_study(QUERIES[:2])]
        assert load_study(path) == new
