"""Mergeable streak detection: sharded ≡ serial, byte-for-byte (§8).

The contract under test (ISSUE 5 acceptance criteria):

* ``merge(detect(a), detect(b)) ≡ detect(a + b)`` — full accumulator
  equality (chain spans, head-region positions, tails, histograms,
  canonical snapshot bytes), for any chunk split, property-tested
  across windows and chunk sizes;
* the accumulator's histogram is byte-identical to the serial
  ``find_streaks`` path;
* chunk-boundary edge cases hold: streaks spanning three or more
  chunks, windows larger than the chunk size, and empty chunks.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.streaks import (
    StreakAccumulator,
    find_streaks,
    streak_length_histogram,
)

# Five families: members of a family are pairwise similar (short
# suffix edits), different families are dissimilar — so random draws
# produce real streaks, interleavings, and boundary-crossing chains.
FAMILIES = [
    'SELECT ?x WHERE {{ ?x <urn:name> "Alice{}" }}',
    'ASK {{ ?p <urn:zzzz> "z{}" . ?p ?q ?r }}',
    "CONSTRUCT {{ ?q <urn:w> ?e }} WHERE {{ ?q <urn:building{}> ?e }}",
    "DESCRIBE <urn:some/long/resource/identifier/{}>",
    "SELECT ?s WHERE {{ ?s <urn:p> ?o . FILTER(?o > {}) }}",
]


def make_query(family: int, variant: int) -> str:
    return FAMILIES[family].format(variant)


def detect(stream, window):
    accumulator = StreakAccumulator(window=window)
    for text in stream:
        accumulator.push(text)
    return accumulator


def detect_chunked(stream, window, boundaries):
    merged = StreakAccumulator(window=window)
    bounds = [0] + sorted(boundaries) + [len(stream)]
    for start, stop in zip(bounds, bounds[1:]):
        merged.merge(detect(stream[start:stop], window))
    return merged


class TestPushMatchesSerialDetector:
    @pytest.mark.parametrize("window", [1, 2, 5, 30])
    def test_histogram_equals_find_streaks(self, window):
        stream = [make_query(i % 5, i % 3) for i in range(60)]
        accumulator = detect(stream, window)
        assert accumulator.length_histogram() == streak_length_histogram(
            find_streaks(stream, window=window)
        )
        assert accumulator.streak_count == len(find_streaks(stream, window=window))

    def test_longest_matches_serial(self):
        stream = [make_query(0, i) for i in range(7)] + [make_query(3, 9)]
        accumulator = detect(stream, 30)
        serial = find_streaks(stream, window=30)
        assert accumulator.longest == max(s.length for s in serial)

    def test_empty_stream(self):
        accumulator = StreakAccumulator()
        assert accumulator.streak_count == 0
        assert accumulator.longest == 0
        assert set(accumulator.length_histogram().values()) == {0}

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            StreakAccumulator(window=0)


class TestChunkBoundaries:
    def test_streak_spanning_three_chunks(self):
        # Nine similar queries, chunked in threes, tiny window: the
        # single 9-member streak must survive two stitches.
        stream = [make_query(0, i) for i in range(9)]
        merged = detect_chunked(stream, window=2, boundaries=[3, 6])
        assert merged == detect(stream, 2)
        assert merged.streak_count == 1
        assert merged.longest == 9

    def test_window_larger_than_chunk_size(self):
        # window 30 over chunks of 2: every chain is open or
        # head-founded at every boundary; an open chain from chunk 1
        # can still be extended by chunk 4.
        stream = [
            make_query(0, 1), make_query(1, 1),
            make_query(2, 1), make_query(3, 1),
            make_query(4, 1), make_query(1, 2),
            make_query(0, 2), make_query(2, 2),
        ]
        merged = detect_chunked(stream, window=30, boundaries=[2, 4, 6])
        assert merged == detect(stream, 30)
        by_start = {chain.start: chain for chain in merged.chains}
        assert by_start[0].head_positions == [0, 6]  # Alice chain spans 3 stitches
        assert by_start[1].head_positions == [1, 5]

    def test_empty_chunks_are_identity(self):
        stream = [make_query(i % 3, i % 2) for i in range(10)]
        serial = detect(stream, 5)
        merged = StreakAccumulator(window=5)
        merged.merge(StreakAccumulator(window=5))  # leading empty chunk
        merged.merge(detect(stream[:4], 5))
        merged.merge(StreakAccumulator(window=5))  # interior empty chunk
        merged.merge(detect(stream[4:], 5))
        merged.merge(StreakAccumulator(window=5))  # trailing empty chunk
        assert merged == serial

    def test_boundary_query_absorbed_not_refounded(self):
        # The first query of chunk 2 extends a chunk-1 streak; it must
        # not also found a second streak of its own.
        stream = [make_query(0, 1), make_query(0, 2), make_query(0, 3)]
        merged = detect_chunked(stream, window=3, boundaries=[1])
        assert merged.streak_count == 1
        assert merged.chains[0].head_positions == [0, 1, 2]
        assert merged.chains[0].length == 3

    def test_out_of_window_chains_do_not_stitch(self):
        # The similar query in chunk 2 sits beyond the window reach of
        # the chunk-1 chain: two separate streaks.
        fillers = [make_query(1, 1), make_query(2, 1), make_query(3, 1)]
        stream = [make_query(0, 1)] + fillers + [make_query(0, 2)]
        merged = detect_chunked(stream, window=2, boundaries=[2])
        assert merged == detect(stream, 2)
        lengths = sorted(c.length for c in merged.chains) + sorted(
            length for length, n in merged.closed.items() for _ in range(n)
        )
        assert 2 not in lengths  # the Alice pair never joined up

    def test_window_and_threshold_mismatch_rejected(self):
        with pytest.raises(ValueError, match="window/threshold"):
            StreakAccumulator(window=5).merge(StreakAccumulator(window=6))
        with pytest.raises(ValueError, match="window/threshold"):
            StreakAccumulator(threshold=0.25).merge(
                StreakAccumulator(threshold=0.5)
            )

    def test_merge_returns_self_and_mutates_left_only(self):
        left, right = detect([make_query(0, 1)], 5), detect([make_query(0, 2)], 5)
        before = json.dumps(right.to_dict())
        assert left.merge(right) is left
        assert json.dumps(right.to_dict()) == before

    def test_copy_is_independent(self):
        accumulator = detect([make_query(0, i) for i in range(4)], 5)
        duplicate = accumulator.copy()
        assert duplicate == accumulator
        duplicate.push(make_query(0, 9))
        assert duplicate != accumulator


# ---------------------------------------------------------------------------
# Property: merge(detect(a), detect(b)) == detect(a + b) — exactly.
# ---------------------------------------------------------------------------

streams = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 2)).map(
        lambda fv: make_query(*fv)
    ),
    min_size=0,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(
    stream=streams,
    window=st.sampled_from([1, 2, 3, 5, 8, 30, 64]),
    data=st.data(),
)
def test_merge_equals_serial_property(stream, window, data):
    cuts = data.draw(
        st.lists(st.integers(0, len(stream)), min_size=0, max_size=4)
    )
    serial = detect(stream, window)
    merged = detect_chunked(stream, window, cuts)
    assert merged == serial
    # Canonical snapshot form: identical bytes, not just equal values.
    assert json.dumps(merged.to_dict()) == json.dumps(serial.to_dict())
    assert merged.length_histogram() == streak_length_histogram(
        find_streaks(stream, window=window)
    )


@settings(max_examples=30, deadline=None)
@given(stream=streams, window=st.sampled_from([2, 5, 30]))
def test_fixed_size_chunking_property(stream, window):
    """The drivers' actual shape: contiguous fixed-size chunks."""
    serial = detect(stream, window)
    for chunk_size in (1, 2, 3, 7):
        boundaries = list(range(chunk_size, len(stream), chunk_size))
        assert detect_chunked(stream, window, boundaries) == serial
