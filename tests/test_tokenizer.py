"""Unit tests for the SPARQL lexer."""

import pytest

from repro.exceptions import SparqlSyntaxError
from repro.sparql import TokenType, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)][:-1]  # drop EOF


def values(text):
    return [t.value for t in tokenize(text)][:-1]


class TestBasicTokens:
    def test_iri(self):
        tokens = tokenize("<http://example.org/a>")
        assert tokens[0].type == TokenType.IRIREF
        assert tokens[0].value == "http://example.org/a"

    def test_variables_both_sigils(self):
        tokens = tokenize("?x $y")
        assert [t.value for t in tokens[:2]] == ["x", "y"]
        assert all(t.type == TokenType.VAR for t in tokens[:2])

    def test_pname(self):
        tokens = tokenize("rdf:type foaf:name :bare")
        assert [t.value for t in tokens[:3]] == ["rdf:type", "foaf:name", ":bare"]
        assert all(t.type == TokenType.PNAME for t in tokens[:3])

    def test_pname_trailing_dot_not_consumed(self):
        tokens = tokenize("?s rdf:type ?o.")
        assert tokens[1].value == "rdf:type"
        assert tokens[3].is_punct(".")

    def test_blank_node(self):
        tokens = tokenize("_:b0")
        assert tokens[0].type == TokenType.BLANK_NODE
        assert tokens[0].value == "b0"

    def test_keywords(self):
        assert kinds("SELECT WHERE FILTER") == [TokenType.KEYWORD] * 3

    def test_numbers(self):
        tokens = tokenize("42 3.14 1e6 .5")
        assert [t.type for t in tokens[:4]] == [
            TokenType.INTEGER,
            TokenType.DECIMAL,
            TokenType.DOUBLE,
            TokenType.DECIMAL,
        ]


class TestStrings:
    def test_double_quoted(self):
        assert tokenize('"hello"')[0].value == "hello"

    def test_single_quoted(self):
        assert tokenize("'hello'")[0].value == "hello"

    def test_long_quoted(self):
        assert tokenize('"""multi\nline"""')[0].value == "multi\nline"

    def test_long_single_quoted(self):
        assert tokenize("'''a'b'''")[0].value == "a'b"

    def test_escapes(self):
        assert tokenize(r'"a\nb\tc\"d"')[0].value == 'a\nb\tc"d'

    def test_unicode_escape(self):
        assert tokenize(r'"é"')[0].value == "é"

    def test_newline_in_short_string_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize('"a\nb"')

    def test_unterminated_string_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize('"unclosed')

    def test_langtag(self):
        tokens = tokenize('"x"@en-US')
        assert tokens[1].type == TokenType.LANGTAG
        assert tokens[1].value == "en-US"


class TestPunctuation:
    def test_multi_char_operators(self):
        assert values("a && b || c != d <= e >= f") == [
            "a", "&&", "b", "||", "c", "!=", "d", "<=", "e", ">=", "f",
        ]

    def test_datatype_marker(self):
        tokens = tokenize('"5"^^<urn:t>')
        assert tokens[1].is_punct("^^")

    def test_anon_and_nil(self):
        tokens = tokenize("[] [ ] () ( )")
        assert [t.type for t in tokens[:4]] == [
            TokenType.ANON, TokenType.ANON, TokenType.NIL, TokenType.NIL,
        ]

    def test_path_operators(self):
        assert values("a*/b+|^c?") == ["a", "*", "/", "b", "+", "|", "^", "c", "?"]


class TestCommentsAndPositions:
    def test_comments_skipped(self):
        assert values("SELECT # comment\n?x") == ["SELECT", "x"]

    def test_line_column_tracking(self):
        tokens = tokenize("SELECT\n  ?x")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(SparqlSyntaxError) as info:
            tokenize("SELECT\n  ~")
        assert info.value.line == 2

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].type == TokenType.EOF
        assert tokenize("?x")[-1].type == TokenType.EOF
