"""Analyzer-pass framework: registry, selection, memoization, profiling,
coverage counters, and the CLI flags that expose them."""

import pytest

import repro.analysis.context as context_module
from repro.analysis.context import AnalysisContext, AnalysisOptions
from repro.analysis.passes import (
    PASS_NAMES,
    PassProfile,
    default_passes,
    resolve_passes,
    run_passes,
)
from repro.analysis.study import CorpusStudy, DatasetStats, measure_query, study_corpus
from repro.cli import main
from repro.logs import build_query_log
from repro.reporting import render_pass_profile, render_study
from repro.reporting.tables import render_coverage_caveats

QUERIES = [
    "SELECT DISTINCT ?x WHERE { ?x <urn:p> ?y FILTER(?y > 3) } LIMIT 7",
    "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c . ?c <urn:r> ?a }",
    "ASK { ?s (<urn:a>/<urn:b>)* ?o }",
    "ASK { ?a ?p ?b . ?b <urn:q> ?c }",
    "DESCRIBE <urn:x>",
]


def study_of(queries, name="test", dedup=True, **options):
    log = build_query_log(name, queries)
    return study_corpus({name: log}, dedup=dedup, options=AnalysisOptions(**options))


class TestRegistry:
    def test_default_order(self):
        assert PASS_NAMES == ("shallow", "paths", "operators", "fragments", "structure")
        assert tuple(p.name for p in default_passes()) == PASS_NAMES

    def test_selection_normalized_to_registry_order(self):
        selected = resolve_passes(("structure", "shallow"))
        assert tuple(p.name for p in selected) == ("shallow", "structure")

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metrics: girth, nope"):
            resolve_passes(("shallow", "nope", "girth"))


class TestPassSelection:
    def test_shallow_only(self):
        study = study_of(QUERIES, metrics=("shallow",))
        assert study.query_count == len(QUERIES)
        assert study.select_ask_count == 4
        # Counters owned by unselected passes stay untouched.
        assert not study.operator_sets
        assert study.aof_count == 0
        assert not study.shape_totals
        assert study.property_path_total == 0

    def test_structure_runs_without_fragments_pass(self):
        # The structure pass re-derives its gates from the context, so
        # it works standalone — the fragment *counters* stay zero while
        # the shape tables fill in.
        study = study_of(QUERIES, metrics=("structure",))
        assert study.aof_count == 0
        assert study.shape_totals["CQ"] == 1
        assert study.predicate_variable_cqof == 1

    def test_subset_matches_full_run_on_owned_counters(self):
        subset = study_of(QUERIES, metrics=("shallow", "paths"))
        full = study_of(QUERIES)
        assert subset.keyword_counts == full.keyword_counts
        assert subset.path_types == full.path_types
        assert subset.non_ctract == full.non_ctract


class TestContextMemoization:
    def test_each_derivation_computed_once(self, monkeypatch):
        calls = {}

        def counting(name, fn):
            def wrapper(*args, **kwargs):
                calls[name] = calls.get(name, 0) + 1
                return fn(*args, **kwargs)

            return wrapper

        for name in ("extract_features", "classify_operators", "classify_fragments",
                     "canonical_graph", "canonical_hypergraph"):
            monkeypatch.setattr(
                context_module, name, counting(name, getattr(context_module, name))
            )
        log = build_query_log("d", ["ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }"])
        study = CorpusStudy()
        stats = DatasetStats(name="d")
        study.datasets["d"] = stats
        run_passes(study, stats, log.parsed[0], 1)
        assert calls["extract_features"] == 1
        assert calls["classify_fragments"] == 1
        assert calls["canonical_graph"] == 1  # constants variant not needed

    def test_context_properties_are_cached_objects(self):
        log = build_query_log("d", ["ASK { ?a <urn:p> ?b }"])
        ctx = AnalysisContext(log.parsed[0], "d")
        assert ctx.features is ctx.features
        assert ctx.fragments is ctx.fragments
        assert ctx.graph() is ctx.graph()
        assert ctx.hypergraph is ctx.hypergraph


class TestCoverageCounters:
    def test_shape_node_limit_skip_counted(self):
        study = study_of(
            ["ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }"], shape_node_limit=2
        )
        assert study.shape_limit_skipped == 1
        assert not study.shape_totals
        caveats = render_coverage_caveats(study)
        assert caveats is not None and "shape-node limit" in caveats
        log = build_query_log("test", ["ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }"])
        assert "Coverage caveats" in render_study(study, {"test": log})

    def test_no_caveats_block_when_nothing_dropped(self):
        study = study_of(QUERIES)
        assert study.shape_limit_skipped == 0
        assert study.non_ctract_truncated == 0
        assert render_coverage_caveats(study) is None
        log = build_query_log("test", QUERIES)
        assert "Coverage caveats" not in render_study(study, {"test": log})

    def test_non_ctract_truncation_counted(self):
        queries = [
            f"ASK {{ ?s (<urn:a{i}>/<urn:b{i}>)* ?o }}" for i in range(120)
        ]
        study = study_of(queries)
        assert len(study.non_ctract) == 100
        assert study.non_ctract_truncated == 20
        assert "Coverage caveats" in render_study(study)

    def test_truncation_merge_matches_serial(self):
        # kept + truncated must be invariant under sharding: the merge
        # charges overflow dropped *during* merging to the counter.
        queries = [
            f"ASK {{ ?s (<urn:a{i}>/<urn:b{i}>)* ?o }}" for i in range(120)
        ]
        log = build_query_log("d", queries)
        serial = study_corpus({"d": log})
        sharded = study_corpus({"d": log}, workers=2, chunk_size=7)
        assert sharded.non_ctract == serial.non_ctract
        assert sharded.non_ctract_truncated == serial.non_ctract_truncated == 20
        assert render_study(sharded, {"d": log}) == render_study(serial, {"d": log})

    def test_shape_limit_skip_merges(self):
        queries = ["ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }"] * 3 + [
            "ASK { ?a <urn:x> ?b }"
        ]
        log = build_query_log("d", queries)
        options = AnalysisOptions(shape_node_limit=2)
        serial = study_corpus({"d": log}, options=options)
        sharded = study_corpus({"d": log}, workers=2, chunk_size=1, options=options)
        assert serial.shape_limit_skipped == 1
        assert sharded == serial


class TestProfiling:
    def test_serial_profile_collected(self):
        study = study_of(QUERIES, profile=True)
        profile = study.pass_profile
        assert profile is not None
        assert set(profile.seconds) == set(PASS_NAMES)
        assert profile.queries == len(QUERIES)
        assert all(elapsed >= 0.0 for elapsed in profile.seconds.values())
        # One graph + one hypergraph lookup missed (nothing repeats).
        assert profile.cache_misses >= 1

    def test_profile_excluded_from_equality(self):
        plain = study_of(QUERIES)
        profiled = study_of(QUERIES, profile=True)
        assert profiled == plain

    def test_parallel_profiles_merge(self):
        log = build_query_log("d", QUERIES * 3)
        options = AnalysisOptions(profile=True)
        study = study_corpus({"d": log}, workers=2, chunk_size=2, options=options)
        profile = study.pass_profile
        assert profile is not None
        assert profile.queries == len(QUERIES)  # unique stream
        assert set(profile.seconds) == set(PASS_NAMES)

    def test_profile_merge_adds(self):
        a = PassProfile(seconds={"shallow": 1.0}, queries=2, cache_hits=3, cache_misses=1)
        b = PassProfile(seconds={"shallow": 0.5, "paths": 2.0}, queries=1, cache_hits=1)
        a.merge(b)
        assert a.seconds == {"shallow": 1.5, "paths": 2.0}
        assert a.queries == 3
        assert a.cache_hits == 4
        assert a.cache_hit_rate == pytest.approx(4 / 5)

    def test_render_pass_profile(self):
        study = study_of(QUERIES, profile=True)
        text = render_pass_profile(study.pass_profile)
        assert "Analyzer passes" in text
        for name in PASS_NAMES:
            assert name in text
        assert "hit rate" in text


class TestMeasureQueryOptions:
    def test_measure_query_accepts_options(self):
        log = build_query_log("d", ["ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }"])
        study = measure_query(
            log.parsed[0], options=AnalysisOptions(shape_node_limit=2)
        )
        assert study.shape_limit_skipped == 1

    def test_measure_query_default_unchanged(self):
        log = build_query_log("d", ["ASK { ?a <urn:p> ?b }"])
        study = measure_query(log.parsed[0])
        assert study.shape_totals["CQ"] == 1


class TestCliFlags:
    def write_log(self, tmp_path, queries):
        path = tmp_path / "endpoint.rq"
        path.write_text("\n".join(queries) + "\n", encoding="utf-8")
        return path

    def test_metrics_flag(self, tmp_path, capsys):
        path = self.write_log(tmp_path, QUERIES)
        assert main(["analyze", "--metrics", "shallow,paths", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_unknown_metric_is_an_error(self, tmp_path, capsys):
        path = self.write_log(tmp_path, QUERIES)
        assert main(["analyze", "--metrics", "shallow,bogus", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown metrics" in err and "bogus" in err

    def test_empty_metrics_selection_is_an_error(self, tmp_path, capsys):
        path = self.write_log(tmp_path, QUERIES)
        for spelling in (",", " ", ", ,"):
            assert main(["analyze", "--metrics", spelling, str(path)]) == 2
            assert "selects no passes" in capsys.readouterr().err

    def test_profile_passes_flag(self, tmp_path, capsys):
        path = self.write_log(tmp_path, QUERIES)
        assert main(["analyze", "--profile-passes", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Analyzer passes: wall time per pass" in out
        assert "hit rate" in out

    def test_shape_node_limit_flag(self, tmp_path, capsys):
        path = self.write_log(tmp_path, ["ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }"])
        assert main(["analyze", "--shape-node-limit", "2", str(path)]) == 0
        assert "Coverage caveats" in capsys.readouterr().out

    def test_default_output_has_no_profile_or_caveats(self, tmp_path, capsys):
        path = self.write_log(tmp_path, QUERIES)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Analyzer passes" not in out
        assert "Coverage caveats" not in out
