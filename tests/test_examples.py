"""Example scripts stay runnable, and streak_explorer's output is pinned.

The examples double as documentation, so they break loudly: every
script must at least import, and ``examples/streak_explorer.py`` —
which exercises the facade's sequence-pass path end to end — has its
full stdout pinned as a golden file (regenerate with
``pytest --update-goldens`` after intentional changes, like the other
goldens).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))
GOLDEN = REPO_ROOT / "tests" / "goldens" / "streak_explorer.txt"


def load_example(name: str):
    """Import an example script as a module (they are not a package)."""
    path = REPO_ROOT / "examples" / name
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.name for p in EXAMPLES])
def test_examples_compile(path):
    compile(path.read_text(encoding="utf-8"), str(path), "exec")


def test_streak_explorer_golden(capsys, update_goldens):
    load_example("streak_explorer.py").main(["160"])
    output = capsys.readouterr().out
    if update_goldens:
        GOLDEN.write_text(output, encoding="utf-8")
        return
    assert GOLDEN.exists(), (
        f"golden file {GOLDEN} is missing; run pytest --update-goldens"
    )
    assert output == GOLDEN.read_text(encoding="utf-8"), (
        "streak_explorer output drifted from its golden copy; if "
        "intentional, regenerate with pytest --update-goldens"
    )
