"""Property-based tests (hypothesis) on core invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    canonical_graph,
    classify_shape,
    hypertree_width,
    levenshtein,
    treewidth,
)
from repro.analysis.graphutil import Multigraph
from repro.rdf import IRI, Literal, Variable
from repro.sparql import ast, parse_query, serialize_query

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)


@st.composite
def terms(draw, allow_variable=True):
    kind = draw(st.integers(0, 2 if allow_variable else 1))
    if kind == 0:
        return IRI("urn:" + draw(_names))
    if kind == 1:
        return Literal(draw(_names))
    return Variable(draw(_names))


@st.composite
def triple_patterns(draw):
    subject = draw(st.one_of(st.builds(Variable, _names), st.builds(lambda n: IRI("urn:" + n), _names)))
    predicate = draw(st.one_of(st.builds(Variable, _names), st.builds(lambda n: IRI("urn:" + n), _names)))
    obj = draw(terms())
    return ast.TriplePattern(subject, predicate, obj)


@st.composite
def cq_queries(draw):
    """Random conjunctive ASK queries."""
    triples = draw(st.lists(triple_patterns(), min_size=1, max_size=6))
    return ast.Query(
        query_type=ast.QueryType.ASK,
        pattern=ast.GroupPattern(tuple(triples)),
    )


@st.composite
def random_multigraphs(draw):
    n = draw(st.integers(1, 8))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=0,
            max_size=14,
        )
    )
    g = Multigraph()
    for i in range(n):
        g.add_node(i)
    for u, v in edges:
        g.add_edge(u, v)
    return g


# ---------------------------------------------------------------------------
# Parser / serializer round-trip
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(cq_queries())
def test_serialize_parse_round_trip(query):
    text = serialize_query(query)
    reparsed = parse_query(text)
    assert reparsed.pattern == query.pattern
    assert reparsed.query_type == query.query_type


@settings(max_examples=60, deadline=None)
@given(cq_queries())
def test_serialization_idempotent(query):
    once = serialize_query(parse_query(serialize_query(query)))
    twice = serialize_query(parse_query(once))
    assert once == twice


# ---------------------------------------------------------------------------
# Shape / width invariants
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(random_multigraphs())
def test_shape_cumulative_invariants(graph):
    profile = classify_shape(graph)
    if profile.single_edge:
        assert profile.chain
    if profile.chain:
        assert profile.chain_set and profile.tree
    if profile.chain_set:
        assert profile.forest
    if profile.star:
        assert profile.tree
    if profile.tree:
        assert profile.forest and profile.flower
    if profile.cycle:
        assert profile.flower
    if profile.flower:
        assert profile.flower_set
    if profile.forest:
        assert profile.flower_set


@settings(max_examples=120, deadline=None)
@given(random_multigraphs())
def test_treewidth_bounds(graph):
    result = treewidth(graph)
    assert result.width >= 0
    # Treewidth is at most n-1.
    if graph.node_count() > 0:
        assert result.width <= max(0, graph.node_count() - 1)
    # Forest <=> treewidth <= 1 (when nonempty edges exist).
    if graph.is_acyclic_simple() and graph.edge_count() > 0:
        assert result.width == 1


@settings(max_examples=100, deadline=None)
@given(random_multigraphs())
def test_forest_iff_no_girth(graph):
    profile = classify_shape(graph)
    assert profile.forest == (profile.shortest_cycle is None)


@settings(max_examples=60, deadline=None)
@given(cq_queries())
def test_canonical_graph_edges_match_triples(query):
    from repro.analysis import has_predicate_variable

    if has_predicate_variable(query.pattern):
        return
    graph = canonical_graph(query.pattern, collapse_equalities=False)
    triples = len(query.pattern.elements)
    assert graph.edge_count() == triples


@settings(max_examples=60, deadline=None)
@given(cq_queries())
def test_hypergraph_width_at_least_one_when_variables(query):
    from repro.analysis import canonical_hypergraph

    hypergraph = canonical_hypergraph(query.pattern)
    result = hypertree_width(hypergraph)
    if hypergraph.edges:
        assert result.width >= 1
    else:
        assert result.width == 0


# ---------------------------------------------------------------------------
# Levenshtein metric properties
# ---------------------------------------------------------------------------

_words = st.text(alphabet=string.ascii_lowercase + " {}?<>:", max_size=25)


@settings(max_examples=200, deadline=None)
@given(_words, _words)
def test_levenshtein_symmetry(a, b):
    assert levenshtein(a, b) == levenshtein(b, a)


@settings(max_examples=200, deadline=None)
@given(_words, _words)
def test_levenshtein_identity_of_indiscernibles(a, b):
    distance = levenshtein(a, b)
    assert (distance == 0) == (a == b)


@settings(max_examples=100, deadline=None)
@given(_words, _words, _words)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


@settings(max_examples=200, deadline=None)
@given(_words, _words)
def test_levenshtein_length_bounds(a, b):
    distance = levenshtein(a, b)
    assert distance >= abs(len(a) - len(b))
    assert distance <= max(len(a), len(b))


@settings(max_examples=200, deadline=None)
@given(_words, _words, st.integers(0, 30))
def test_banded_levenshtein_agrees_with_full(a, b, budget):
    full = levenshtein(a, b)
    banded = levenshtein(a, b, max_distance=budget)
    if full <= budget:
        assert banded == full
    else:
        assert banded is None
