"""Unit tests for the indexed graph store."""

import pytest

from repro.rdf import IRI, Graph, Literal, Triple

S = IRI("urn:s")
P = IRI("urn:p")
Q = IRI("urn:q")
O = IRI("urn:o")
O2 = IRI("urn:o2")


@pytest.fixture()
def graph():
    g = Graph()
    g.add(Triple(S, P, O))
    g.add(Triple(S, P, O2))
    g.add(Triple(S, Q, O))
    g.add(Triple(O, P, O2))
    return g


class TestMutation:
    def test_add_returns_true_for_new(self):
        g = Graph()
        assert g.add(Triple(S, P, O)) is True

    def test_add_duplicate_returns_false(self, graph):
        assert graph.add(Triple(S, P, O)) is False
        assert len(graph) == 4

    def test_remove(self, graph):
        assert graph.remove(Triple(S, P, O)) is True
        assert Triple(S, P, O) not in graph
        assert len(graph) == 3

    def test_remove_missing_returns_false(self, graph):
        assert graph.remove(Triple(O2, P, O)) is False

    def test_remove_cleans_indexes(self, graph):
        graph.remove(Triple(O, P, O2))
        assert list(graph.match(s=O)) == []
        assert graph.count_matches(p=P) == 2

    def test_update_counts_inserted(self, graph):
        inserted = graph.update([Triple(S, P, O), Triple(O2, P, O)])
        assert inserted == 1

    def test_add_spo_convenience(self):
        g = Graph()
        assert g.add_spo(S, P, O)
        assert Triple(S, P, O) in g

    def test_constructor_accepts_triples(self):
        g = Graph([Triple(S, P, O), Triple(S, P, O)])
        assert len(g) == 1


class TestMatch:
    def test_fully_bound(self, graph):
        assert list(graph.match(S, P, O)) == [Triple(S, P, O)]
        assert list(graph.match(S, P, IRI("urn:none"))) == []

    def test_sp_bound(self, graph):
        objects = {t.object for t in graph.match(S, P)}
        assert objects == {O, O2}

    def test_po_bound(self, graph):
        subjects = {t.subject for t in graph.match(p=P, o=O2)}
        assert subjects == {S, O}

    def test_so_bound(self, graph):
        predicates = {t.predicate for t in graph.match(s=S, o=O)}
        assert predicates == {P, Q}

    def test_s_bound(self, graph):
        assert len(list(graph.match(s=S))) == 3

    def test_p_bound(self, graph):
        assert len(list(graph.match(p=P))) == 3

    def test_o_bound(self, graph):
        assert len(list(graph.match(o=O))) == 2

    def test_unbound_scans_all(self, graph):
        assert len(list(graph.match())) == 4


class TestCounts:
    def test_count_all(self, graph):
        assert graph.count_matches() == 4

    def test_count_sp(self, graph):
        assert graph.count_matches(s=S, p=P) == 2

    def test_count_po(self, graph):
        assert graph.count_matches(p=P, o=O2) == 2

    def test_count_predicate(self, graph):
        assert graph.count_matches(p=P) == 3
        assert graph.count_matches(p=IRI("urn:none")) == 0

    def test_predicate_histogram(self, graph):
        assert graph.predicate_histogram() == {P: 3, Q: 1}


class TestVocabulary:
    def test_subjects(self, graph):
        assert graph.subjects() == {S, O}

    def test_predicates(self, graph):
        assert graph.predicates() == {P, Q}

    def test_objects(self, graph):
        assert graph.objects() == {O, O2}

    def test_nodes(self, graph):
        assert graph.nodes() == {S, O, O2}


class TestDescribe:
    def test_describe_includes_both_directions(self, graph):
        triples = graph.describe(O)
        assert Triple(O, P, O2) in triples
        assert Triple(S, P, O) in triples
        assert Triple(S, Q, O) in triples
        assert len(triples) == 3

    def test_describe_literal_only_object_position(self):
        g = Graph()
        lit = Literal("x")
        g.add(Triple(S, P, lit))
        assert g.describe(lit) == [Triple(S, P, lit)]

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add(Triple(O2, P, O))
        assert len(graph) == 4
        assert len(clone) == 5
