"""Failure-injection tests: every layer must fail loudly and precisely,
or absorb exactly the failures its contract says it absorbs."""

import pytest

from repro.engine import IndexedEngine
from repro.exceptions import (
    EvaluationError,
    ReproError,
    SparqlSyntaxError,
    WorkloadError,
)
from repro.logs import build_query_log
from repro.rdf import IRI, Graph, Literal, Triple, Variable
from repro.sparql import parse_query


class TestExceptionHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc_type in (SparqlSyntaxError, EvaluationError, WorkloadError):
            assert issubclass(exc_type, ReproError)

    def test_catching_base_class_at_pipeline_boundary(self):
        try:
            parse_query("SELECT {")
        except ReproError:
            pass  # the pipeline catches this one type
        else:
            pytest.fail("expected ReproError")


class TestPipelineRobustness:
    def test_pipeline_survives_garbage(self):
        garbage = [
            "",
            "\x00\x01\x02",
            "{" * 50,
            "SELECT " + "?" * 100,
            "PREFIX : <urn:> " * 100,
            "ASK { " + "?a <urn:p> ?b . " * 500 + "}",  # large but valid
            "💥 unicode junk 💥",
        ]
        log = build_query_log("junk", garbage)
        assert log.total == len(garbage)
        assert log.valid == 1  # only the big valid ASK

    def test_deeply_nested_groups_do_not_crash(self):
        depth = 150
        text = "ASK " + "{" * depth + " ?s <urn:p> ?o " + "}" * depth
        # Either parses fine or raises SparqlSyntaxError (via the
        # pipeline's RecursionError guard) — never a hard crash.
        log = build_query_log("deep", [text])
        assert log.total == 1

    def test_pathological_long_line(self):
        text = "ASK { ?s <urn:p> \"" + "x" * 100_000 + "\" }"
        log = build_query_log("long", [text])
        assert log.valid == 1


class TestEngineRobustness:
    def test_engine_rejects_malformed_query_text(self, social_graph):
        engine = IndexedEngine(social_graph)
        with pytest.raises(SparqlSyntaxError):
            engine.evaluate("SELECT {")

    def test_bind_rebinding_raises(self, social_graph):
        engine = IndexedEngine(social_graph)
        with pytest.raises(EvaluationError):
            engine.evaluate(
                "SELECT * WHERE { ?x <urn:name> ?n BIND(1 AS ?n) }"
            )

    def test_empty_graph_queries(self):
        engine = IndexedEngine(Graph())
        assert engine.evaluate("SELECT * WHERE { ?s ?p ?o }") == []
        assert engine.evaluate("ASK { ?s ?p ?o }") is False
        # Empty body over an empty graph: the empty solution matches.
        assert engine.evaluate("ASK { }") is True

    def test_cartesian_product_query(self, social_graph):
        # Disconnected BGP = cartesian product; must compute, not crash.
        engine = IndexedEngine(social_graph)
        rows = engine.evaluate(
            "SELECT * WHERE { ?a <urn:name> ?n . ?x <urn:age> ?v }"
        )
        assert len(rows) == 3 * 2

    def test_unbound_order_by_sorts_first(self, social_graph):
        engine = IndexedEngine(social_graph)
        rows = engine.evaluate(
            "SELECT ?x ?a WHERE { ?x <urn:name> ?n "
            "OPTIONAL { ?x <urn:age> ?a } } ORDER BY ?a"
        )
        assert Variable("a") not in rows[0]  # unbound first


class TestGraphStoreEdgeCases:
    def test_self_loop_triples(self):
        g = Graph()
        node = IRI("urn:n")
        g.add(Triple(node, IRI("urn:p"), node))
        assert g.count_matches(s=node) == 1
        assert g.count_matches(o=node) == 1
        g.remove(Triple(node, IRI("urn:p"), node))
        assert len(g) == 0
        assert list(g.match(s=node)) == []

    def test_literal_with_odd_characters(self):
        g = Graph()
        lit = Literal('quote " backslash \\ newline \n tab \t')
        g.add(Triple(IRI("urn:s"), IRI("urn:p"), lit))
        assert g.count_matches(o=lit) == 1

    def test_massive_fanout_node(self):
        g = Graph()
        hub = IRI("urn:hub")
        p = IRI("urn:p")
        for i in range(2000):
            g.add(Triple(hub, p, IRI(f"urn:o{i}")))
        assert g.count_matches(s=hub, p=p) == 2000
        assert len(list(g.match(s=hub))) == 2000
