"""Unit tests for shallow feature extraction (Table 2 semantics)."""

from repro.analysis import extract_features
from repro.sparql import parse_query


def features(text):
    return extract_features(parse_query(text))


class TestKeywords:
    def test_query_type_keyword(self):
        assert "Select" in features("SELECT * WHERE { ?s ?p ?o }").keywords
        assert "Ask" in features("ASK { ?s ?p ?o }").keywords
        assert "Describe" in features("DESCRIBE <urn:x>").keywords
        assert "Construct" in features(
            "CONSTRUCT { ?s <urn:p> ?o } WHERE { ?s <urn:q> ?o }"
        ).keywords

    def test_and_requires_two_patterns(self):
        assert "And" not in features("SELECT * WHERE { ?s <urn:p> ?o }").keywords
        assert "And" in features(
            "SELECT * WHERE { ?s <urn:p> ?o . ?o <urn:q> ?z }"
        ).keywords

    def test_filter_does_not_count_as_and(self):
        f = features("SELECT * WHERE { ?s <urn:p> ?o FILTER(?o > 1) }")
        assert "Filter" in f.keywords
        assert "And" not in f.keywords

    def test_solution_modifiers(self):
        f = features(
            "SELECT DISTINCT ?s WHERE { ?s ?p ?o } ORDER BY ?s LIMIT 5 OFFSET 1"
        )
        assert {"Distinct", "Order By", "Limit", "Offset"} <= f.keywords

    def test_group_by_having(self):
        f = features(
            "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } "
            "GROUP BY ?s HAVING (COUNT(?o) > 1)"
        )
        assert {"Group By", "Having", "Count"} <= f.keywords

    def test_aggregates_in_projection(self):
        f = features(
            "SELECT (MAX(?v) AS ?a) (MIN(?v) AS ?b) (AVG(?v) AS ?c) "
            "(SUM(?v) AS ?d) WHERE { ?s <urn:v> ?v }"
        )
        assert {"Max", "Min", "Avg", "Sum"} <= f.keywords

    def test_exists_vs_not_exists(self):
        f1 = features("ASK { ?s ?p ?o FILTER EXISTS { ?s <urn:q> ?z } }")
        f2 = features("ASK { ?s ?p ?o FILTER NOT EXISTS { ?s <urn:q> ?z } }")
        assert "Exists" in f1.keywords and "Not Exists" not in f1.keywords
        assert "Not Exists" in f2.keywords

    def test_union_opt_graph_minus(self):
        f = features(
            "SELECT * WHERE { { ?a <urn:x> ?b } UNION { ?a <urn:y> ?b } "
            "OPTIONAL { ?a <urn:z> ?c } GRAPH <urn:g> { ?a ?p ?q } "
            "MINUS { ?a <urn:w> ?b } }"
        )
        assert {"Union", "Opt", "Graph", "Minus"} <= f.keywords

    def test_service_bind_values(self):
        f = features(
            "SELECT * WHERE { SERVICE <urn:e> { ?s ?p ?o } "
            "BIND(1 AS ?x) VALUES ?v { 1 } }"
        )
        assert {"Service", "Bind", "Values"} <= f.keywords

    def test_subquery_adds_select_keyword(self):
        f = features("ASK { { SELECT ?x WHERE { ?x <urn:p> ?y } } }")
        assert "Select" in f.keywords and "Ask" in f.keywords
        assert f.uses_subquery


class TestTripleCounts:
    def test_simple_count(self):
        assert features("ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }").triple_count == 2

    def test_counts_inside_operators(self):
        f = features(
            "SELECT * WHERE { ?a <urn:p> ?b OPTIONAL { ?b <urn:q> ?c } "
            "{ ?a <urn:r> ?d } UNION { ?a <urn:s> ?e } }"
        )
        assert f.triple_count == 4

    def test_path_patterns_counted(self):
        f = features("ASK { ?a <urn:p>* ?b . ?b <urn:q> ?c }")
        assert f.triple_count == 2
        assert f.path_pattern_count == 1

    def test_bodyless_describe_zero(self):
        f = features("DESCRIBE <urn:x>")
        assert f.triple_count == 0
        assert not f.has_body

    def test_subquery_triples_counted(self):
        f = features(
            "SELECT * WHERE { ?a <urn:p> ?b { SELECT ?x WHERE { ?x <urn:q> ?y } } }"
        )
        assert f.triple_count == 2


class TestProjection:
    def test_select_star_no_projection(self):
        assert features("SELECT * WHERE { ?s ?p ?o }").uses_projection is False

    def test_select_all_vars_no_projection(self):
        f = features("SELECT ?s ?p ?o WHERE { ?s ?p ?o }")
        assert f.uses_projection is False

    def test_select_subset_projects(self):
        assert features("SELECT ?s WHERE { ?s ?p ?o }").uses_projection is True

    def test_ask_without_variables_no_projection(self):
        f = features("ASK { <urn:s> <urn:p> <urn:o> }")
        assert f.uses_projection is False

    def test_ask_with_variables_projects(self):
        assert features("ASK { ?s <urn:p> ?o }").uses_projection is True

    def test_bind_makes_indeterminate(self):
        f = features("SELECT ?s WHERE { ?s <urn:p> ?o BIND(?o AS ?b) }")
        # ?o is missing and not a Bind variable -> definite projection.
        assert f.uses_projection is True
        f2 = features("SELECT ?s ?o WHERE { ?s <urn:p> ?o BIND(1 AS ?b) }")
        # only the Bind variable ?b is missing -> indeterminate.
        assert f2.uses_projection is None

    def test_describe_is_not_projection(self):
        assert features("DESCRIBE ?x WHERE { ?x <urn:p> ?y }").uses_projection is False

    def test_select_or_ask_helper(self):
        assert features("ASK { ?s ?p ?o }").is_select_or_ask()
        assert not features("DESCRIBE <urn:x>").is_select_or_ask()
