"""Unit tests for the property-path taxonomy and Ctract (Table 5, §7)."""

import pytest

from repro.analysis import classify_path, in_ctract
from repro.sparql import ast, parse_query


def path_of(text):
    query = parse_query(f"ASK {{ ?s {text} ?o }}")
    element = query.pattern.elements[0]
    assert isinstance(element, ast.PathPattern), f"{text} parsed as triple"
    return element.path


class TestSimpleForms:
    def test_negated_single_is_simple(self):
        c = classify_path(path_of("!<urn:a>"))
        assert not c.navigational
        assert c.simple_form == "!a"

    def test_inverse_single_is_simple(self):
        c = classify_path(path_of("^<urn:a>"))
        assert not c.navigational
        assert c.simple_form == "^a"

    def test_simple_forms_are_ctract(self):
        assert classify_path(path_of("!<urn:a>")).ctract
        assert classify_path(path_of("^<urn:a>")).ctract


class TestTaxonomy:
    @pytest.mark.parametrize(
        "text,expected,k",
        [
            ("(<urn:a>|<urn:b>)*", "(a1|...|ak)*", 2),
            ("(<urn:a>|<urn:b>|<urn:c>|<urn:d>)*", "(a1|...|ak)*", 4),
            ("<urn:a>*", "a*", None),
            ("<urn:a>/<urn:b>", "a1/.../ak", 2),
            ("<urn:a>/<urn:b>/<urn:c>/<urn:d>/<urn:e>/<urn:f>", "a1/.../ak", 6),
            ("<urn:a>*/<urn:b>", "a*/b", None),
            ("<urn:b>/<urn:a>*", "a*/b", None),  # symmetric form
            ("<urn:a>|<urn:b>", "a1|...|ak", 2),
            ("<urn:a>+", "a+", None),
            ("<urn:a>?/<urn:b>?", "a1?/.../ak?", 2),
            ("<urn:a>/(<urn:b>|<urn:c>)", "a(b1|...|bk)", 2),
            ("<urn:a>/<urn:b>?/<urn:c>?", "a1/a2?/.../ak?", 3),
            ("(<urn:a>/<urn:b>*)|<urn:c>", "(a/b*)|c", None),
            ("<urn:a>*/<urn:b>?", "a*/b?", None),
            ("<urn:a>/<urn:b>/<urn:c>*", "a/b/c*", None),
            ("!(<urn:a>|<urn:b>)", "!(a|b)", 2),
            ("(<urn:a>|<urn:b>)+", "(a1|...|ak)+", 2),
            (
                "(<urn:a>|<urn:b>)/(<urn:a>|<urn:b>)",
                "(a1|...|ak)(a1|...|ak)",
                2,
            ),
            ("<urn:a>?|<urn:b>", "a?|b", None),
            ("<urn:a>*|<urn:b>", "a*|b", None),
            ("(<urn:a>|<urn:b>)?", "(a|b)?", None),
            ("<urn:a>|<urn:b>+", "a|b+", None),
            ("<urn:a>+|<urn:b>+", "a+|b+", None),
            ("(<urn:a>/<urn:b>)*", "(a/b)*", 2),
        ],
    )
    def test_expression_type(self, text, expected, k):
        c = classify_path(path_of(text))
        assert c.expression_type == expected
        assert c.k == k
        assert c.navigational

    def test_inverse_atom_inside_counts_as_letter(self):
        # (^a)/b classifies like a/b.
        c = classify_path(path_of("^<urn:a>/<urn:b>"))
        assert c.expression_type == "a1/.../ak"

    def test_negated_atom_inside_counts_as_letter(self):
        c = classify_path(path_of("!<urn:a>/<urn:b>"))
        assert c.expression_type == "a1/.../ak"

    def test_unknown_shape_is_other(self):
        c = classify_path(path_of("(<urn:a>*/<urn:b>*)|(<urn:c>/<urn:d>/<urn:e>*)"))
        assert c.expression_type == "other"

    def test_different_alternation_sets_not_squared(self):
        c = classify_path(path_of("(<urn:a>|<urn:b>)/(<urn:c>|<urn:d>)"))
        assert c.expression_type != "(a1|...|ak)(a1|...|ak)"


class TestCtract:
    def test_letter_star_tractable(self):
        assert in_ctract(path_of("<urn:a>*"))

    def test_alternation_star_tractable(self):
        assert in_ctract(path_of("(<urn:a>|<urn:b>)*"))

    def test_word_star_intractable(self):
        assert not in_ctract(path_of("(<urn:a>/<urn:b>)*"))

    def test_nested_star_intractable(self):
        assert not in_ctract(path_of("(<urn:a>*/<urn:b>)*"))

    def test_sequence_of_tractable_parts(self):
        assert in_ctract(path_of("<urn:a>*/<urn:b>"))

    def test_plus_over_word_intractable(self):
        assert not in_ctract(path_of("(<urn:a>/<urn:b>)+"))

    def test_optional_letter_in_loop_ok(self):
        assert in_ctract(path_of("(<urn:a>?)*"))

    def test_paper_finding_only_word_star_fails(self):
        """Every Table 5 type except (a/b)* must be in Ctract."""
        tractable_samples = [
            "(<urn:a>|<urn:b>)*", "<urn:a>*", "<urn:a>/<urn:b>",
            "<urn:a>*/<urn:b>", "<urn:a>|<urn:b>", "<urn:a>+",
            "<urn:a>?/<urn:b>?", "<urn:a>/(<urn:b>|<urn:c>)",
            "(<urn:a>/<urn:b>*)|<urn:c>", "<urn:a>*/<urn:b>?",
            "<urn:a>/<urn:b>/<urn:c>*", "!(<urn:a>|<urn:b>)",
            "(<urn:a>|<urn:b>)+", "<urn:a>?|<urn:b>", "<urn:a>*|<urn:b>",
            "(<urn:a>|<urn:b>)?", "<urn:a>|<urn:b>+", "<urn:a>+|<urn:b>+",
        ]
        for text in tractable_samples:
            assert in_ctract(path_of(text)), text
        assert not in_ctract(path_of("(<urn:a>/<urn:b>)*"))
