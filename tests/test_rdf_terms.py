"""Unit tests for the RDF term model."""

import pytest

from repro.rdf import (
    IRI,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    BlankNode,
    Literal,
    Triple,
    Variable,
)
from repro.rdf.terms import RDF_LANGSTRING, XSD_STRING


class TestIRI:
    def test_sparql_text(self):
        assert IRI("http://example.org/a").sparql_text() == "<http://example.org/a>"

    def test_equality_and_hash(self):
        assert IRI("urn:a") == IRI("urn:a")
        assert hash(IRI("urn:a")) == hash(IRI("urn:a"))
        assert IRI("urn:a") != IRI("urn:b")

    def test_local_name_hash_separator(self):
        assert IRI("http://example.org/ns#label").local_name() == "label"

    def test_local_name_slash_separator(self):
        assert IRI("http://example.org/ns/label").local_name() == "label"

    def test_local_name_no_separator(self):
        assert IRI("urn:isbn:123").local_name() == "urn:isbn:123"

    def test_is_constant(self):
        assert IRI("urn:a").is_constant()
        assert not IRI("urn:a").is_variable()


class TestLiteral:
    def test_plain_literal_text(self):
        assert Literal("hello").sparql_text() == '"hello"'

    def test_language_literal_text(self):
        assert Literal("hello", language="en").sparql_text() == '"hello"@en'

    def test_typed_literal_text(self):
        literal = Literal("5", datatype=XSD_INTEGER)
        assert literal.sparql_text() == f'"5"^^<{XSD_INTEGER}>'

    def test_escaping(self):
        assert Literal('a"b\nc\\d').sparql_text() == '"a\\"b\\nc\\\\d"'

    def test_language_and_datatype_conflict(self):
        with pytest.raises(ValueError):
            Literal("x", language="en", datatype=XSD_INTEGER)

    def test_effective_datatype_plain(self):
        assert Literal("x").effective_datatype == XSD_STRING

    def test_effective_datatype_language(self):
        assert Literal("x", language="en").effective_datatype == RDF_LANGSTRING

    def test_is_numeric(self):
        assert Literal("5", datatype=XSD_INTEGER).is_numeric()
        assert Literal("5.5", datatype=XSD_DECIMAL).is_numeric()
        assert Literal("5e3", datatype=XSD_DOUBLE).is_numeric()
        assert not Literal("5").is_numeric()

    def test_python_value(self):
        assert Literal("5", datatype=XSD_INTEGER).python_value() == 5
        assert Literal("2.5", datatype=XSD_DOUBLE).python_value() == 2.5
        assert Literal("true", datatype=XSD_BOOLEAN).python_value() is True
        assert Literal("false", datatype=XSD_BOOLEAN).python_value() is False
        assert Literal("plain").python_value() == "plain"


class TestVariable:
    def test_text(self):
        assert Variable("x").sparql_text() == "?x"

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")
        with pytest.raises(ValueError):
            Variable("a b")

    def test_is_variable(self):
        assert Variable("x").is_variable()
        assert not Variable("x").is_constant()


class TestBlankNode:
    def test_text(self):
        assert BlankNode("b0").sparql_text() == "_:b0"

    def test_not_constant(self):
        assert not BlankNode("b0").is_constant()


class TestOrdering:
    def test_kind_order(self):
        blank = BlankNode("b")
        iri = IRI("urn:a")
        literal = Literal("a")
        variable = Variable("v")
        assert sorted(
            [variable, literal, iri, blank], key=lambda t: t.sort_key()
        ) == [blank, iri, literal, variable]

    def test_lt_operator(self):
        assert BlankNode("a") < IRI("urn:a") < Literal("a") < Variable("a")


class TestTriple:
    def test_valid_triple(self):
        triple = Triple(IRI("urn:s"), IRI("urn:p"), Literal("o"))
        assert list(triple) == [IRI("urn:s"), IRI("urn:p"), Literal("o")]

    def test_literal_subject_rejected(self):
        with pytest.raises(ValueError):
            Triple(Literal("s"), IRI("urn:p"), IRI("urn:o"))

    def test_variable_predicate_rejected(self):
        with pytest.raises(ValueError):
            Triple(IRI("urn:s"), Variable("p"), IRI("urn:o"))

    def test_blank_subject_allowed(self):
        Triple(BlankNode("b"), IRI("urn:p"), IRI("urn:o"))

    def test_sparql_text(self):
        triple = Triple(IRI("urn:s"), IRI("urn:p"), IRI("urn:o"))
        assert triple.sparql_text() == "<urn:s> <urn:p> <urn:o> ."

    def test_sort_key_orders_triples(self):
        t1 = Triple(IRI("urn:a"), IRI("urn:p"), IRI("urn:x"))
        t2 = Triple(IRI("urn:b"), IRI("urn:p"), IRI("urn:x"))
        assert sorted([t2, t1], key=Triple.sort_key) == [t1, t2]
