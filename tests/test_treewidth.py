"""Unit tests for exact treewidth computation (§6.2)."""

import itertools

from repro.analysis import treewidth
from repro.analysis.graphutil import Multigraph
from repro.analysis.treewidth import treewidth_at_most_2


def build(*edges):
    g = Multigraph()
    for u, v in edges:
        g.add_edge(u, v)
    return g


def clique(n):
    g = Multigraph()
    for u, v in itertools.combinations(range(n), 2):
        g.add_edge(u, v)
    return g


def grid(rows, cols):
    g = Multigraph()
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1))
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c))
    return g


class TestSmallWidths:
    def test_empty_graph(self):
        result = treewidth(Multigraph())
        assert result.width == 0 and result.exact

    def test_isolated_nodes(self):
        g = Multigraph()
        g.add_node(1)
        g.add_node(2)
        assert treewidth(g).width == 0

    def test_single_edge(self):
        assert treewidth(build((1, 2))).width == 1

    def test_tree(self):
        g = build((1, 2), (2, 3), (2, 4), (4, 5))
        assert treewidth(g).width == 1

    def test_cycle_is_two(self):
        g = build((1, 2), (2, 3), (3, 1))
        assert treewidth(g).width == 2

    def test_long_cycle_is_two(self):
        edges = [(i, (i + 1) % 20) for i in range(20)]
        assert treewidth(build(*edges)).width == 2

    def test_loops_ignored(self):
        g = build((1, 1), (1, 2))
        assert treewidth(g).width == 1

    def test_parallel_edges_ignored(self):
        g = build((1, 2), (1, 2))
        assert treewidth(g).width == 1


class TestDecisionAtMost2:
    def test_series_parallel_true(self):
        # Theta graph: tw 2.
        g = build((0, 1), (1, 3), (0, 2), (2, 3), (0, 3))
        assert treewidth_at_most_2(g)

    def test_k4_false(self):
        assert not treewidth_at_most_2(clique(4))

    def test_k4_subdivision_false(self):
        # Subdividing edges preserves the K4 minor.
        g = build(
            (0, 10), (10, 1),
            (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
        )
        assert not treewidth_at_most_2(g)

    def test_forest_true(self):
        assert treewidth_at_most_2(build((1, 2), (3, 4)))


class TestExactSearch:
    def test_k4_is_three(self):
        result = treewidth(clique(4))
        assert result.width == 3 and result.exact

    def test_k5_is_four(self):
        result = treewidth(clique(5))
        assert result.width == 4 and result.exact

    def test_paper_figure7_graph(self):
        """The DBpedia query of Figure 7: two K4-ish central nodes over
        three shared attribute nodes — treewidth 3."""
        # ?subject and ?object each connect to nationality, birthPlace,
        # genre (shared); that's K(2,3) plus ... build exactly:
        g = Multigraph()
        for person in ("subject", "object"):
            for attribute in ("nationality", "birthPlace", "genre"):
                g.add_edge(person, attribute)
        # K(2,3) alone has treewidth 2; the paper's query also joins the
        # attribute values pairwise through shared variables.  Model the
        # variant that forced width 3: attributes mutually connected.
        g.add_edge("nationality", "birthPlace")
        g.add_edge("birthPlace", "genre")
        g.add_edge("genre", "nationality")
        result = treewidth(g)
        assert result.width == 3 and result.exact

    def test_3x3_grid_is_three(self):
        result = treewidth(grid(3, 3))
        assert result.width == 3 and result.exact

    def test_wheel_graph_is_three(self):
        # Hub + 5-cycle: treewidth 3.
        g = build(
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 0),
            *((i, "hub") for i in range(5)),
        )
        assert treewidth(g).width == 3

    def test_fallback_bound_for_large_graphs(self):
        g = grid(3, 4)
        result = treewidth(g, exact_limit=5)
        assert not result.exact
        assert result.width >= 3
