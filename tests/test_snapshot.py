"""Round-trip tests for the versioned study snapshots.

The contract under test (ISSUE 4 acceptance criteria):

* ``CorpusStudy.from_dict(study.to_dict())`` equals the original — and
  renders byte-identical reports — across dedup=True/False, sharded
  runs, profiled runs, and a JSON round trip through text;
* merging loaded snapshots is byte-identical (rendered report) to
  merging the same studies in memory;
* zero counts and counter key order survive (both change table bytes);
* malformed/mis-versioned input raises ``StudySnapshotError`` naming
  the problem — never a silent partial load.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.snapshot import (
    SCHEMA_VERSION,
    load_study,
    save_study,
    study_from_dict,
    study_to_dict,
)
from repro.analysis.study import CorpusStudy, DatasetStats, study_corpus
from repro.api import merge_studies
from repro.exceptions import StudySnapshotError
from repro.logs import build_query_log
from repro.reporting import render_report

QUERY_POOL = [
    "SELECT ?x WHERE { ?x <urn:p> ?y }",
    "SELECT DISTINCT ?x WHERE { ?x <urn:p> ?y . ?y <urn:q> ?z }",
    "ASK { ?a <urn:q> ?b . ?b <urn:r> ?a }",
    "ASK { ?s <urn:p>+ ?o }",
    "SELECT * WHERE { ?s ?p ?o . FILTER(?o > 3) }",
    "SELECT ?s WHERE { ?s <urn:p> ?o . OPTIONAL { ?s <urn:q> ?t } }",
    "SELECT ?s WHERE { { ?s <urn:a> ?o } UNION { ?s <urn:b> ?o } }",
    "CONSTRUCT { ?s <urn:p> ?o } WHERE { ?s <urn:p> ?o }",
    "ASK { ?x1 ?x2 ?x3 . ?x3 <urn:a> ?x4 . ?x4 ?x2 ?x5 }",
    "not a query at all {",
]


def build_study(texts_by_dataset, dedup=True, **kwargs):
    logs = {
        name: build_query_log(name, texts)
        for name, texts in texts_by_dataset.items()
    }
    return study_corpus(logs, dedup=dedup, **kwargs)


@pytest.fixture(scope="module")
def sample_study():
    return build_study(
        {"alpha": QUERY_POOL, "beta": QUERY_POOL[:4] + QUERY_POOL[:2]}
    )


class TestRoundTrip:
    @pytest.mark.parametrize("dedup", [True, False])
    def test_equality_and_bytes_through_json_text(self, dedup):
        study = build_study(
            {"alpha": QUERY_POOL, "beta": QUERY_POOL[:5]}, dedup=dedup
        )
        reloaded = CorpusStudy.from_dict(
            json.loads(json.dumps(study.to_dict()))
        )
        assert reloaded == study
        for fmt in ("text", "json", "jsonl", "csv", "markdown"):
            assert render_report(reloaded, fmt) == render_report(study, fmt)

    def test_sharded_study_round_trips(self):
        study = build_study(
            {"alpha": QUERY_POOL * 3}, workers=2, chunk_size=2
        )
        assert CorpusStudy.from_dict(study.to_dict()) == study

    def test_profiled_study_round_trips_profile(self):
        from repro.analysis.context import AnalysisOptions

        study = build_study(
            {"alpha": QUERY_POOL}, options=AnalysisOptions(profile=True)
        )
        assert study.pass_profile is not None
        reloaded = CorpusStudy.from_dict(study.to_dict())
        assert reloaded.pass_profile is not None
        assert reloaded.pass_profile.queries == study.pass_profile.queries
        assert reloaded.pass_profile.seconds == study.pass_profile.seconds

    def test_zero_counts_survive(self):
        study = CorpusStudy()
        study.girth_hist[3] = 0  # explicitly-recorded zero bucket
        study.keyword_counts["Select"] = 0
        reloaded = CorpusStudy.from_dict(study.to_dict())
        assert 3 in reloaded.girth_hist
        assert "Select" in reloaded.keyword_counts

    def test_counter_key_order_survives(self):
        study = CorpusStudy()
        for keyword in ("Union", "Ask", "Select", "Filter"):
            study.keyword_counts[keyword] = 1  # all tied: order breaks ties
        reloaded = CorpusStudy.from_dict(study.to_dict())
        assert list(reloaded.keyword_counts) == list(study.keyword_counts)
        assert (
            reloaded.keyword_counts.most_common()
            == study.keyword_counts.most_common()
        )

    def test_operator_set_keys_round_trip_as_frozensets(self, sample_study):
        reloaded = CorpusStudy.from_dict(sample_study.to_dict())
        assert reloaded.operator_sets == sample_study.operator_sets
        for key in reloaded.operator_sets:
            assert isinstance(key, frozenset)

    def test_dataset_stats_round_trip(self, sample_study):
        stats = sample_study.datasets["alpha"]
        reloaded = DatasetStats.from_dict(stats.to_dict())
        assert reloaded == stats
        # int histogram keys keep their type through JSON pair lists
        reloaded = DatasetStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert reloaded.triple_hist == stats.triple_hist

    def test_save_load_file_round_trip(self, sample_study, tmp_path):
        path = tmp_path / "study.json"
        save_study(sample_study, path)
        assert load_study(path) == sample_study


class TestMergeOfLoadedSnapshots:
    @pytest.mark.parametrize("dedup", [True, False])
    @pytest.mark.parametrize("sharded", [False, True])
    def test_merge_loaded_equals_merge_in_memory(self, tmp_path, dedup, sharded):
        kwargs = {"workers": 2, "chunk_size": 2} if sharded else {}
        first = build_study({"alpha": QUERY_POOL}, dedup=dedup, **kwargs)
        second = build_study(
            {"alpha": QUERY_POOL[:6], "beta": QUERY_POOL}, dedup=dedup, **kwargs
        )
        in_memory = merge_studies(
            [
                build_study({"alpha": QUERY_POOL}, dedup=dedup, **kwargs),
                build_study(
                    {"alpha": QUERY_POOL[:6], "beta": QUERY_POOL},
                    dedup=dedup,
                    **kwargs,
                ),
            ]
        )
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_study(first, a)
        save_study(second, b)
        from_disk = merge_studies([load_study(a), load_study(b)])
        assert from_disk == in_memory
        assert render_report(from_disk, "text") == render_report(in_memory, "text")

    def test_merge_preserves_pipeline_counters(self, tmp_path):
        study = build_study({"alpha": QUERY_POOL})
        path = tmp_path / "a.json"
        save_study(study, path)
        merged = merge_studies([load_study(path), load_study(path)])
        # Table 1 counters double like every other accumulator.
        assert merged.datasets["alpha"].total == 2 * study.datasets["alpha"].total


class TestMalformedInput:
    def test_rejects_non_dict(self):
        with pytest.raises(StudySnapshotError, match="JSON object"):
            study_from_dict([1, 2, 3])

    def test_rejects_future_schema(self, sample_study):
        data = study_to_dict(sample_study)
        data["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(StudySnapshotError, match="schema version"):
            study_from_dict(data)

    def test_rejects_wrong_kind(self, sample_study):
        data = study_to_dict(sample_study)
        data["kind"] = "repro.other"
        with pytest.raises(StudySnapshotError, match="kind"):
            study_from_dict(data)

    @pytest.mark.parametrize(
        "field", ["dedup", "datasets", "keyword_counts", "operator_sets", "non_ctract"]
    )
    def test_rejects_missing_field(self, sample_study, field):
        data = study_to_dict(sample_study)
        del data[field]
        with pytest.raises(StudySnapshotError):
            study_from_dict(data)

    def test_rejects_malformed_counter_pairs(self, sample_study):
        data = study_to_dict(sample_study)
        data["keyword_counts"] = [["Select"]]  # pair missing its count
        with pytest.raises(StudySnapshotError, match="keyword_counts"):
            study_from_dict(data)

    def test_rejects_non_int_count(self, sample_study):
        data = study_to_dict(sample_study)
        data["girth_hist"] = [[3, "many"]]
        with pytest.raises(StudySnapshotError, match="girth_hist"):
            study_from_dict(data)

    @pytest.mark.parametrize("attr", ["shape_counts", "treewidth_counts"])
    def test_rejects_missing_fragment_keys(self, sample_study, attr):
        # The renderers index CQ/CQF/CQOF unconditionally: a snapshot
        # without them must fail at load, not as a KeyError at render.
        data = study_to_dict(sample_study)
        data[attr] = {}
        with pytest.raises(StudySnapshotError, match="missing fragment"):
            study_from_dict(data)

    def test_rejects_dataset_name_mismatch(self, sample_study):
        data = study_to_dict(sample_study)
        data["datasets"]["alpha"]["name"] = "omega"
        with pytest.raises(StudySnapshotError, match="disagrees"):
            study_from_dict(data)

    def test_load_study_corrupt_json(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{oops", encoding="utf-8")
        with pytest.raises(StudySnapshotError, match="not valid JSON"):
            load_study(path)

    def test_load_study_missing_file_is_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_study(tmp_path / "missing.json")


# ---------------------------------------------------------------------------
# Property-based: random corpora drawn from the pool round-trip exactly.
# ---------------------------------------------------------------------------


corpora_strategy = st.dictionaries(
    keys=st.sampled_from(["alpha", "beta", "gamma"]),
    values=st.lists(st.sampled_from(QUERY_POOL), min_size=0, max_size=12),
    min_size=1,
    max_size=3,
)


@settings(max_examples=25, deadline=None)
@given(corpora=corpora_strategy, dedup=st.booleans())
def test_round_trip_property(corpora, dedup):
    study = build_study(corpora, dedup=dedup)
    reloaded = CorpusStudy.from_dict(json.loads(json.dumps(study.to_dict())))
    assert reloaded == study
    assert render_report(reloaded, "text") == render_report(study, "text")


@settings(max_examples=15, deadline=None)
@given(
    first=corpora_strategy,
    second=corpora_strategy,
    dedup=st.booleans(),
)
def test_merge_of_snapshots_property(tmp_path_factory, first, second, dedup):
    tmp_path = tmp_path_factory.mktemp("snapshots")
    a_study = build_study(first, dedup=dedup)
    b_study = build_study(second, dedup=dedup)
    in_memory = merge_studies(
        [build_study(first, dedup=dedup), build_study(second, dedup=dedup)]
    )
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    save_study(a_study, a)
    save_study(b_study, b)
    from_disk = merge_studies([load_study(a), load_study(b)])
    assert from_disk == in_memory
    assert render_report(from_disk, "text") == render_report(in_memory, "text")


# ---------------------------------------------------------------------------
# Gzip snapshots: a .gz suffix compresses on write; reads go by the
# gzip magic bytes, not the file name.
# ---------------------------------------------------------------------------


class TestGzipSnapshots:
    def test_round_trip(self, sample_study, tmp_path):
        path = tmp_path / "study.json.gz"
        save_study(sample_study, path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        reloaded = load_study(path)
        assert reloaded == sample_study
        assert render_report(reloaded, "text") == render_report(
            sample_study, "text"
        )

    def test_gzip_smaller_than_plain(self, sample_study, tmp_path):
        plain = tmp_path / "study.json"
        packed = tmp_path / "study.json.gz"
        save_study(sample_study, plain)
        save_study(sample_study, packed)
        assert packed.stat().st_size < plain.stat().st_size

    def test_gzip_write_is_deterministic(self, sample_study, tmp_path):
        # mtime is pinned to 0, so identical studies produce identical
        # bytes — snapshot files stay content-addressable.
        first = tmp_path / "a.json.gz"
        second = tmp_path / "b.json.gz"
        save_study(sample_study, first)
        save_study(sample_study, second)
        assert first.read_bytes() == second.read_bytes()

    def test_load_detects_gzip_regardless_of_suffix(self, sample_study, tmp_path):
        import gzip as gzip_module

        packed = tmp_path / "study.json.gz"
        save_study(sample_study, packed)
        renamed = tmp_path / "study.json"
        renamed.write_bytes(packed.read_bytes())
        assert load_study(renamed) == sample_study
        # And the reverse: plain JSON under a .gz name still loads.
        plain = tmp_path / "plain.json"
        plain.write_text(
            gzip_module.decompress(packed.read_bytes()).decode("utf-8")
        )
        assert load_study(plain) == sample_study

    def test_truncated_gzip_is_snapshot_error(self, sample_study, tmp_path):
        path = tmp_path / "study.json.gz"
        save_study(sample_study, path)
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(StudySnapshotError, match="gzip"):
            load_study(path)

    def test_cli_save_study_gz_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "q.rq"
        source.write_text("\n".join(QUERY_POOL[:5]) + "\n")
        packed = tmp_path / "study.json.gz"
        assert main(["analyze", str(source), "--save-study", str(packed)]) == 0
        direct = capsys.readouterr().out
        assert packed.read_bytes()[:2] == b"\x1f\x8b"
        assert main(["report", str(packed)]) == 0
        assert capsys.readouterr().out == direct
