"""Default pass pipeline ≡ the pre-refactor monolith (PR 3 tentpole).

The analyzer-pass framework replaced the hardcoded ``_analyze_query`` →
``_analyze_structure`` → ``_analyze_paths`` chain.  This module keeps a
verbatim copy of that monolith as a *reference implementation* and
property-tests that the default pipeline reproduces it — counter for
counter and byte for byte in the rendered report — on random query
streams, for both the Unique (dedup) and Valid (weighted) corpora.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.canonical import (
    canonical_graph,
    canonical_hypergraph,
    has_predicate_variable,
)
from repro.analysis.features import extract_features
from repro.analysis.fragments import classify_fragments
from repro.analysis.hypertree import hypertree_width
from repro.analysis.operators import TABLE3_ROWS, classify_operators
from repro.analysis.property_paths import classify_path
from repro.analysis.shapes import classify_shape
from repro.analysis.study import CorpusStudy, DatasetStats, study_corpus
from repro.analysis.treewidth import treewidth
from repro.logs import build_query_log
from repro.reporting import render_study
from repro.sparql import ast, walk
from repro.sparql.serializer import serialize_path

_SHAPE_NODE_LIMIT = 400
_NON_CTRACT_LIMIT = 100

#: Queries exercising every pass: shallow keywords, paths (incl. a
#: non-Ctract one), operator sets, fragments, shapes/treewidth, and a
#: predicate-variable hypergraph query.  Invalid text keeps
#: Valid < Total like real logs.
ENTRY_POOL = [
    "ASK { ?s ?p ?o }",
    "SELECT * WHERE { ?a ?b ?c }",
    "SELECT DISTINCT ?x WHERE { ?x <urn:p> ?y FILTER(?y > 3) } LIMIT 7",
    "SELECT ?x WHERE { ?x <urn:p>/<urn:q> ?y }",
    "ASK { ?s (<urn:a>/<urn:b>)* ?o }",
    "SELECT ?x WHERE { { ?x <urn:p> ?y } UNION { ?x <urn:q> ?y } "
    "OPTIONAL { ?x <urn:r> ?z } }",
    "SELECT ?x WHERE { ?x <urn:p> ?y . ?y <urn:p> ?x }",
    "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c . ?c <urn:r> ?a }",
    "ASK { ?a <urn:p> <urn:const> }",
    "ASK { ?x1 ?x2 ?x3 . ?x3 <urn:a> ?x4 . ?x4 ?x2 ?x5 }",
    "SELECT ?s WHERE { ?s <urn:p> ?o BIND(1 AS ?b) }",
    "DESCRIBE <urn:x>",
    "BROKEN {",
]


# ---------------------------------------------------------------------------
# Reference implementation: the pre-refactor monolith, verbatim.
# ---------------------------------------------------------------------------


def _legacy_analyze_query(study, stats, parsed, weight):
    query = parsed.query
    # Wikidata queries get their SERVICE wrapper stripped (§4.3 fn 13).
    if stats.name.lower().startswith("wikidata"):
        query = walk.strip_services(query)
    features = extract_features(query)

    study.query_count += weight
    stats.queries += weight
    stats.triple_sum += features.triple_count * weight
    for keyword in features.keywords:
        study.keyword_counts[keyword] += weight
        stats.keyword_counts[keyword] += weight
    if not features.has_body:
        study.no_body_count += weight
    if features.uses_subquery:
        study.subquery_count += weight
    if features.uses_projection is True:
        study.projection_true += weight
        if query.query_type is ast.QueryType.ASK:
            study.ask_projection += weight
    elif features.uses_projection is None:
        study.projection_indeterminate += weight

    _legacy_analyze_paths(study, parsed.query, weight)

    if not features.is_select_or_ask():
        return
    study.select_ask_count += weight
    stats.select_ask += weight
    stats.triple_hist[features.triple_count] += weight

    classification = classify_operators(query)
    if classification.pure:
        if classification.letters in TABLE3_ROWS:
            study.operator_sets[classification.letters] += weight
        else:
            study.operator_other_combination += weight
            study.operator_sets[classification.letters] += weight
    else:
        study.operator_other_features += weight

    fragments = classify_fragments(query)
    if not fragments.is_aof:
        return
    study.aof_count += weight
    if fragments.is_well_designed:
        study.well_designed_count += weight
        if (
            fragments.has_simple_filters
            and fragments.interface_width is not None
            and fragments.interface_width > 1
        ):
            study.wide_interface_count += weight
    if fragments.is_cq:
        study.cq_count += weight
    if fragments.is_cqf:
        study.cqf_count += weight
    if fragments.is_cqof:
        study.cqof_count += weight

    triples = features.triple_count
    if triples >= 1:
        if fragments.is_cq:
            study.cq_sizes[triples] += weight
        if fragments.is_cqf:
            study.cqf_sizes[triples] += weight
        if fragments.is_cqof:
            study.cqof_sizes[triples] += weight

    _legacy_analyze_structure(study, query, fragments, weight)


def _legacy_analyze_structure(study, query, fragments, weight):
    pattern = query.pattern
    if has_predicate_variable(pattern):
        if fragments.is_cqof:
            study.predicate_variable_cqof += weight
            hypergraph = canonical_hypergraph(pattern)
            result = hypertree_width(hypergraph)
            study.hypertree_widths[result.width] += weight
            study.decomposition_nodes[result.node_count] += weight
        return
    if not (fragments.is_cq or fragments.is_cqf or fragments.is_cqof):
        return
    graph = canonical_graph(pattern)
    if graph.node_count() > _SHAPE_NODE_LIMIT:
        return
    profile = classify_shape(graph)
    width = treewidth(graph)
    memberships = profile.as_dict()
    for fragment, member in (
        ("CQ", fragments.is_cq),
        ("CQF", fragments.is_cqf),
        ("CQOF", fragments.is_cqof),
    ):
        if not member:
            continue
        study.shape_totals[fragment] += weight
        for shape, holds in memberships.items():
            if holds:
                study.shape_counts[fragment][shape] += weight
        study.treewidth_counts[fragment][width.width] += weight
    if fragments.is_cq and profile.single_edge:
        study.single_edge_cq += weight
        constants_only = canonical_graph(pattern, include_constants=False)
        if constants_only.node_count() < graph.node_count():
            study.single_edge_cq_with_constants += weight
    if profile.shortest_cycle is not None and fragments.is_cqof:
        study.girth_hist[profile.shortest_cycle] += weight


def _legacy_analyze_paths(study, query, weight):
    pattern = query.pattern
    for node in walk.iter_path_patterns(pattern):
        study.property_path_total += weight
        classification = classify_path(node.path)
        if not classification.navigational:
            if classification.simple_form:
                study.simple_path_forms[classification.simple_form] += weight
            continue
        study.path_types[classification.expression_type] += weight
        if classification.k is not None:
            study.path_type_k.setdefault(
                classification.expression_type, []
            ).append(classification.k)
        if not classification.ctract and len(study.non_ctract) < _NON_CTRACT_LIMIT:
            study.non_ctract.append(serialize_path(node.path))


def legacy_study_corpus(logs, dedup=True):
    """The pre-refactor serial driver, verbatim."""
    study = CorpusStudy(dedup=dedup)
    for name, log in logs.items():
        stats = DatasetStats(
            name=name, total=log.total, valid=log.valid, unique=log.unique
        )
        study.datasets[name] = stats
        for parsed in log.unique_queries():
            weight = 1 if dedup else parsed.count
            _legacy_analyze_query(study, stats, parsed, weight)
    return study


# ---------------------------------------------------------------------------
# The property: pipeline ≡ monolith
# ---------------------------------------------------------------------------


def build_logs(picks):
    entries = [ENTRY_POOL[i] for i in picks]
    # Split the stream over two datasets, one of them Wikidata-named so
    # the SERVICE-stripping view is exercised through the context.
    half = len(entries) // 2
    return {
        "endpoint": build_query_log("endpoint", entries[:half]),
        "WikiData17": build_query_log("WikiData17", entries[half:]),
    }


class TestPipelineEqualsMonolith:
    @settings(max_examples=40, deadline=None)
    @given(
        picks=st.lists(
            st.integers(min_value=0, max_value=len(ENTRY_POOL) - 1), max_size=40
        ),
        dedup=st.booleans(),
    )
    def test_random_streams(self, picks, dedup):
        logs = build_logs(picks)
        expected = legacy_study_corpus(logs, dedup=dedup)
        actual = study_corpus(logs, dedup=dedup)
        assert actual == expected
        assert render_study(actual, logs) == render_study(expected, logs)

    def test_whole_pool_once(self):
        logs = build_logs(range(len(ENTRY_POOL)))
        expected = legacy_study_corpus(logs)
        actual = study_corpus(logs)
        assert actual == expected
        assert render_study(actual, logs) == render_study(expected, logs)

    def test_valid_corpus_weights(self):
        picks = [0, 0, 0, 4, 4, 7, 8, 8, 8, 8, 2]
        logs = build_logs(picks)
        expected = legacy_study_corpus(logs, dedup=False)
        actual = study_corpus(logs, dedup=False)
        assert actual == expected
