"""Unit tests for the filter/expression evaluator."""

import pytest

from repro.engine.expressions import (
    ExpressionError,
    effective_boolean_value,
    evaluate_expression,
)
from repro.rdf import IRI, BlankNode, Literal, Variable
from repro.rdf.terms import XSD_BOOLEAN, XSD_INTEGER
from repro.sparql import parse_query


def expression_of(filter_text):
    query = parse_query(f"ASK {{ ?s ?p ?o FILTER({filter_text}) }}")
    return query.pattern.elements[1].expression


def evaluate(filter_text, **bindings):
    binding = {Variable(k): v for k, v in bindings.items()}
    return evaluate_expression(expression_of(filter_text), binding)


def truth(filter_text, **bindings):
    return effective_boolean_value(evaluate(filter_text, **bindings))


def integer(value):
    return Literal(str(value), datatype=XSD_INTEGER)


class TestEBV:
    def test_boolean_literals(self):
        assert effective_boolean_value(Literal("true", datatype=XSD_BOOLEAN))
        assert not effective_boolean_value(Literal("false", datatype=XSD_BOOLEAN))

    def test_numbers(self):
        assert effective_boolean_value(integer(5))
        assert not effective_boolean_value(integer(0))

    def test_strings(self):
        assert effective_boolean_value(Literal("x"))
        assert not effective_boolean_value(Literal(""))

    def test_iri_has_no_ebv(self):
        with pytest.raises(ExpressionError):
            effective_boolean_value(IRI("urn:x"))


class TestComparisons:
    def test_numeric_equality_across_types(self):
        assert truth("?o = 5.0", o=integer(5))

    def test_numeric_ordering(self):
        assert truth("?o < 10", o=integer(5))
        assert not truth("?o > 10", o=integer(5))
        assert truth("?o <= 5", o=integer(5))
        assert truth("?o >= 5", o=integer(5))

    def test_string_comparison(self):
        assert truth('?o = "abc"', o=Literal("abc"))
        assert truth('?o != "xyz"', o=Literal("abc"))
        assert truth('?o < "b"', o=Literal("abc"))

    def test_iri_equality(self):
        assert truth("?o = <urn:x>", o=IRI("urn:x"))
        assert truth("?o != <urn:y>", o=IRI("urn:x"))

    def test_incomparable_types_error(self):
        with pytest.raises(ExpressionError):
            evaluate("?o < 5", o=IRI("urn:x"))

    def test_unbound_variable_errors(self):
        with pytest.raises(ExpressionError):
            evaluate("?nope = 1")


class TestLogic:
    def test_and_or(self):
        assert truth("?o > 1 && ?o < 10", o=integer(5))
        assert truth("?o < 1 || ?o > 3", o=integer(5))
        assert not truth("?o < 1 && ?o > 3", o=integer(5))

    def test_not(self):
        assert truth("!(?o = 1)", o=integer(5))

    def test_or_error_absorption(self):
        # One operand errors (unbound), the other is true → true.
        assert truth("?o = 5 || ?unbound = 1", o=integer(5))

    def test_or_all_false_with_error_raises(self):
        with pytest.raises(ExpressionError):
            evaluate("?o = 99 || ?unbound = 1", o=integer(5))

    def test_and_error_absorption(self):
        # One operand false → false even if the other errors.
        assert not truth("?o = 99 && ?unbound = 1", o=integer(5))

    def test_in_expression(self):
        assert truth("?o IN (1, 5, 9)", o=integer(5))
        assert truth("?o NOT IN (2, 3)", o=integer(5))


class TestArithmetic:
    def test_basic_operations(self):
        assert truth("?o + 1 = 6", o=integer(5))
        assert truth("?o - 1 = 4", o=integer(5))
        assert truth("?o * 2 = 10", o=integer(5))
        assert truth("?o / 2 = 2.5", o=integer(5))

    def test_division_by_zero_errors(self):
        with pytest.raises(ExpressionError):
            evaluate("?o / 0 = 1", o=integer(5))

    def test_unary_minus(self):
        assert truth("-?o = -5", o=integer(5))

    def test_arithmetic_on_string_errors(self):
        with pytest.raises(ExpressionError):
            evaluate("?o + 1 = 2", o=Literal("abc"))


class TestBuiltins:
    def test_bound(self):
        assert truth("BOUND(?o)", o=integer(1))
        assert not truth("BOUND(?other)", o=integer(1))

    def test_str_of_iri(self):
        assert truth('STR(?o) = "urn:x"', o=IRI("urn:x"))

    def test_lang(self):
        assert truth('LANG(?o) = "en"', o=Literal("hi", language="en"))
        assert truth('LANG(?o) = ""', o=Literal("hi"))

    def test_langmatches(self):
        assert truth(
            'LANGMATCHES(LANG(?o), "en")', o=Literal("hi", language="en-US")
        )
        assert truth('LANGMATCHES(LANG(?o), "*")', o=Literal("hi", language="fr"))

    def test_datatype(self):
        assert truth(
            f"DATATYPE(?o) = <{XSD_INTEGER}>", o=integer(5)
        )

    def test_string_builtins(self):
        assert truth("STRLEN(?o) = 3", o=Literal("abc"))
        assert truth('UCASE(?o) = "ABC"', o=Literal("abc"))
        assert truth('LCASE(?o) = "abc"', o=Literal("ABC"))
        assert truth('CONTAINS(?o, "b")', o=Literal("abc"))
        assert truth('STRSTARTS(?o, "ab")', o=Literal("abc"))
        assert truth('STRENDS(?o, "bc")', o=Literal("abc"))
        assert truth('CONCAT(?o, "d") = "abcd"', o=Literal("abc"))
        assert truth('SUBSTR(?o, 2) = "bc"', o=Literal("abc"))
        assert truth('SUBSTR(?o, 1, 2) = "ab"', o=Literal("abc"))

    def test_regex(self):
        assert truth('REGEX(?o, "^a.c$")', o=Literal("abc"))
        assert truth('REGEX(?o, "ABC", "i")', o=Literal("abc"))
        assert not truth('REGEX(?o, "xyz")', o=Literal("abc"))

    def test_bad_regex_errors(self):
        with pytest.raises(ExpressionError):
            evaluate('REGEX(?o, "[")', o=Literal("abc"))

    def test_numeric_builtins(self):
        assert truth("ABS(?o) = 5", o=integer(-5))
        assert truth("CEIL(2.1) = 3")
        assert truth("FLOOR(2.9) = 2")
        assert truth("ROUND(2.5) = 2")  # Python banker's rounding

    def test_type_tests(self):
        assert truth("ISIRI(?o)", o=IRI("urn:x"))
        assert truth("ISBLANK(?o)", o=BlankNode("b"))
        assert truth("ISLITERAL(?o)", o=Literal("x"))
        assert truth("ISNUMERIC(?o)", o=integer(5))
        assert not truth("ISNUMERIC(?o)", o=Literal("5"))

    def test_coalesce(self):
        assert truth("COALESCE(?unbound, 5) = 5", o=integer(1))

    def test_if(self):
        assert truth("IF(?o > 3, 1, 2) = 1", o=integer(5))
        assert truth("IF(?o > 9, 1, 2) = 2", o=integer(5))

    def test_sameterm(self):
        assert truth("SAMETERM(?o, ?o)", o=integer(5))

    def test_iri_builtin(self):
        assert truth('IRI("urn:x") = <urn:x>')

    def test_xsd_cast(self):
        assert truth(
            "<http://www.w3.org/2001/XMLSchema#integer>(?o) = 5",
            o=Literal("5"),
        )

    def test_unsupported_builtin_errors(self):
        with pytest.raises(ExpressionError):
            evaluate("UUID() = 1")
