"""Unit tests for generalized hypertree width (§6.2)."""

from repro.analysis import canonical_hypergraph, hypertree_width
from repro.analysis.canonical import Hypergraph
from repro.rdf import Variable
from repro.sparql import parse_query


def hypergraph_of(text):
    return canonical_hypergraph(parse_query(text).pattern)


def hg(*edges):
    h = Hypergraph()
    for edge in edges:
        h.add_edge(frozenset(Variable(x) for x in edge))
    return h


class TestWidthOne:
    def test_single_edge(self):
        result = hypertree_width(hg(("a", "b")))
        assert result.width == 1 and result.exact

    def test_chain(self):
        result = hypertree_width(hg(("a", "b"), ("b", "c"), ("c", "d")))
        assert result.width == 1
        assert result.node_count == 3

    def test_acyclic_with_big_edge(self):
        # {a,b,c} covers {a,b} and {b,c}: α-acyclic.
        result = hypertree_width(hg(("a", "b", "c"), ("a", "b"), ("b", "c")))
        assert result.width == 1

    def test_star(self):
        result = hypertree_width(hg(("x", "a"), ("x", "b"), ("x", "c")))
        assert result.width == 1

    def test_empty(self):
        result = hypertree_width(Hypergraph())
        assert result.width == 0 and result.node_count == 0

    def test_node_count_equals_edges_for_width_one(self):
        h = hg(("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"))
        result = hypertree_width(h)
        assert result.node_count == len(h.distinct_edges())


class TestWidthTwo:
    def test_triangle(self):
        result = hypertree_width(hg(("a", "b"), ("b", "c"), ("c", "a")))
        assert result.width == 2 and result.exact

    def test_square_cycle(self):
        result = hypertree_width(
            hg(("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"))
        )
        assert result.width == 2

    def test_example_5_1(self):
        h = hypergraph_of(
            "ASK WHERE {?x1 ?x2 ?x3 . ?x3 <urn:a> ?x4 . ?x4 ?x2 ?x5}"
        )
        result = hypertree_width(h)
        assert result.width == 2

    def test_decomposition_nodes_small(self):
        result = hypertree_width(hg(("a", "b"), ("b", "c"), ("c", "a")))
        assert 1 <= result.node_count <= 3


class TestWidthThree:
    def test_three_dimensional_cycle(self):
        # Pairwise-overlapping binary edges over 6 nodes in a pattern
        # requiring width 3 is hard to build small; instead verify a
        # width-2 certificate is refused where impossible: K4 primal via
        # six binary edges needs width >= 2 but is coverable by 2 edges?
        # Use the standard 3-uniform "triangle of triples" instead.
        h = hg(
            ("a", "b", "x"),
            ("b", "c", "y"),
            ("c", "a", "z"),
            ("x", "y", "z"),
        )
        result = hypertree_width(h, max_width=4)
        assert result.exact
        assert result.width == 2

    def test_k4_binary_edges(self):
        h = hg(
            ("a", "b"), ("a", "c"), ("a", "d"),
            ("b", "c"), ("b", "d"), ("c", "d"),
        )
        result = hypertree_width(h)
        assert result.width == 2  # K4 has ghw 2 (each bag = 2 edges)

    def test_width_exceeding_max_returns_bound(self):
        # A 5-cycle of binary edges has ghw 2; force failure with
        # max_width=1 is impossible (function starts at acyclic check,
        # then k=2..max). Use max_width=1 via parameter.
        h = hg(("a", "b"), ("b", "c"), ("c", "a"))
        result = hypertree_width(h, max_width=1)
        assert not result.exact
        assert result.width == 3  # trivial bound: number of edges


class TestGYOInteraction:
    def test_duplicate_edges_do_not_inflate(self):
        h = hg(("a", "b"), ("a", "b"), ("b", "c"))
        result = hypertree_width(h)
        assert result.width == 1
        assert result.node_count == 2

    def test_single_variable_triple(self):
        h = hypergraph_of("ASK { ?a <urn:p> <urn:o> . ?a <urn:q> ?b }")
        result = hypertree_width(h)
        assert result.width == 1

    def test_search_limit_fallback(self):
        h = hg(*[(f"n{i}", f"n{(i + 1) % 70}") for i in range(70)])
        result = hypertree_width(h, search_limit=10)
        assert not result.exact
