"""Unit tests for §5.2 fragment classification (CQ/CPF/CQF/AOF/CQOF)."""

from repro.analysis import classify_fragments, is_aof, is_cpf, is_cq, is_cqf
from repro.analysis.fragments import is_simple_filter
from repro.sparql import parse_query


def pattern_of(text):
    return parse_query(text).pattern


def profile(text):
    return classify_fragments(parse_query(text))


class TestCQ:
    def test_plain_bgp_is_cq(self):
        assert is_cq(pattern_of("ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }"))

    def test_filter_not_cq(self):
        assert not is_cq(pattern_of("ASK { ?a <urn:p> ?b FILTER(?b > 1) }"))

    def test_optional_not_cq(self):
        assert not is_cq(
            pattern_of("ASK { ?a <urn:p> ?b OPTIONAL { ?b <urn:q> ?c } }")
        )

    def test_nested_groups_still_cq(self):
        assert is_cq(pattern_of("ASK { { ?a <urn:p> ?b } ?b <urn:q> ?c }"))

    def test_path_not_cq(self):
        assert not is_cq(pattern_of("ASK { ?a <urn:p>* ?b }"))

    def test_no_body_not_cq(self):
        assert not is_cq(None)


class TestFilters:
    def test_single_variable_filter_simple(self):
        q = parse_query('ASK { ?a ?p ?b FILTER(lang(?b) = "en") }')
        assert is_simple_filter(q.pattern.elements[1].expression)

    def test_variable_equality_simple(self):
        q = parse_query("ASK { ?a ?p ?b FILTER(?a = ?b) }")
        assert is_simple_filter(q.pattern.elements[1].expression)

    def test_two_variable_inequality_not_simple(self):
        q = parse_query("ASK { ?a ?p ?b FILTER(?a != ?b) }")
        assert not is_simple_filter(q.pattern.elements[1].expression)

    def test_two_variable_less_than_not_simple(self):
        q = parse_query("ASK { ?a ?p ?b FILTER(?a < ?b) }")
        assert not is_simple_filter(q.pattern.elements[1].expression)

    def test_exists_never_simple(self):
        q = parse_query("ASK { ?a ?p ?b FILTER EXISTS { ?a <urn:q> 1 } }")
        assert not is_simple_filter(q.pattern.elements[1].expression)

    def test_cqf_requires_simple_filters(self):
        assert is_cqf(pattern_of("ASK { ?a <urn:p> ?b FILTER(?b > 1) }"))
        assert not is_cqf(pattern_of("ASK { ?a <urn:p> ?b FILTER(?a < ?b) }"))

    def test_cpf_allows_any_filter(self):
        assert is_cpf(pattern_of("ASK { ?a <urn:p> ?b FILTER(?a < ?b) }"))


class TestAOF:
    def test_aof_with_all_three(self):
        assert is_aof(
            pattern_of(
                "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c "
                "OPTIONAL { ?c <urn:r> ?d } FILTER(?b != 1) }"
            )
        )

    def test_union_not_aof(self):
        assert not is_aof(
            pattern_of("ASK { { ?a <urn:x> ?b } UNION { ?a <urn:y> ?b } }")
        )

    def test_graph_not_aof(self):
        assert not is_aof(pattern_of("ASK { GRAPH <urn:g> { ?s ?p ?o } }"))

    def test_nested_optionals_aof(self):
        assert is_aof(
            pattern_of(
                "ASK { ?a <urn:p> ?b OPTIONAL { ?b <urn:q> ?c "
                "OPTIONAL { ?c <urn:r> ?d } } }"
            )
        )


class TestCQOF:
    def test_paper_p1_is_cqof(self):
        p = profile(
            "SELECT * WHERE { ?A <urn:name> ?N "
            "OPTIONAL { ?A <urn:email> ?E } OPTIONAL { ?A <urn:webPage> ?W } }"
        )
        assert p.is_well_designed
        assert p.interface_width == 1
        assert p.is_cqof

    def test_paper_p2_is_cqof(self):
        p = profile(
            "SELECT * WHERE { ?A <urn:name> ?N "
            "OPTIONAL { ?A <urn:email> ?E OPTIONAL { ?A <urn:webPage> ?W } } }"
        )
        assert p.is_cqof

    def test_interface_width_two_excluded(self):
        p = profile(
            "SELECT * WHERE { ?A <urn:name> ?W "
            "OPTIONAL { ?A <urn:email> ?E } OPTIONAL { ?A <urn:webPage> ?W } }"
        )
        assert p.is_well_designed
        assert p.interface_width == 2
        assert not p.is_cqof

    def test_non_well_designed_excluded(self):
        p = profile(
            "SELECT * WHERE { ?A <urn:name> ?N "
            "OPTIONAL { ?A <urn:email> ?E } ?X <urn:other> ?E }"
        )
        assert not p.is_well_designed
        assert not p.is_cqof

    def test_plain_cq_is_cqof(self):
        p = profile("ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }")
        assert p.is_cq and p.is_cqf and p.is_cqof
        assert p.interface_width == 0

    def test_non_simple_filter_blocks_cqof(self):
        p = profile(
            "SELECT * WHERE { ?a <urn:p> ?b OPTIONAL { ?b <urn:q> ?c } "
            "FILTER(?a < ?b) }"
        )
        assert p.is_aof and p.is_well_designed
        assert not p.is_cqof

    def test_construct_never_in_fragments(self):
        p = classify_fragments(
            parse_query("CONSTRUCT { ?s <urn:p> ?o } WHERE { ?s <urn:q> ?o }")
        )
        assert not p.is_aof and not p.is_cq

    def test_fragment_nesting_invariant(self):
        # CQ ⊆ CQF ⊆ CQOF on a sample of queries.
        samples = [
            "ASK { ?a <urn:p> ?b }",
            "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }",
            'ASK { ?a <urn:p> ?b FILTER(lang(?b) = "en") }',
            "SELECT * WHERE { ?a <urn:p> ?b OPTIONAL { ?b <urn:q> ?c } }",
        ]
        for text in samples:
            p = profile(text)
            if p.is_cq:
                assert p.is_cqf, text
            if p.is_cqf:
                assert p.is_cqof, text
