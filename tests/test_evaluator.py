"""Unit tests for SPARQL pattern/query evaluation."""

import pytest

from repro.engine import IndexedEngine, NestedLoopEngine
from repro.exceptions import EvaluationError
from repro.rdf import IRI, Graph, Literal, Triple, Variable
from repro.sparql import parse_query


@pytest.fixture(params=["indexed", "scan"])
def engine(request, social_graph):
    cls = IndexedEngine if request.param == "indexed" else NestedLoopEngine
    return cls(social_graph)


def names_of(results, variable="n"):
    return sorted(str(r[Variable(variable)]) for r in results if Variable(variable) in r)


class TestBGP:
    def test_single_pattern(self, engine):
        rows = engine.evaluate("SELECT ?x WHERE { ?x <urn:knows> <urn:bob> }")
        assert [r[Variable("x")] for r in rows] == [IRI("urn:alice")]

    def test_join(self, engine):
        rows = engine.evaluate(
            "SELECT ?n WHERE { <urn:alice> <urn:knows> ?f . ?f <urn:name> ?n }"
        )
        assert names_of(rows) == ["Bob"]

    def test_cycle_join(self, engine):
        rows = engine.evaluate(
            "SELECT ?a WHERE { ?a <urn:knows> ?b . ?b <urn:knows> ?c . "
            "?c <urn:knows> ?a }"
        )
        assert {r[Variable("a")] for r in rows} == {
            IRI("urn:alice"), IRI("urn:bob"), IRI("urn:carol"),
        }

    def test_shared_variable_constraint(self, engine):
        rows = engine.evaluate("SELECT ?x WHERE { ?x <urn:knows> ?x }")
        assert rows == []

    def test_no_match(self, engine):
        assert engine.evaluate("SELECT * WHERE { ?x <urn:nothere> ?y }") == []

    def test_both_engines_agree(self, social_graph):
        query = (
            "SELECT ?a ?n WHERE { ?a <urn:knows> ?b . ?b <urn:name> ?n }"
        )
        indexed = IndexedEngine(social_graph).evaluate(query)
        scanned = NestedLoopEngine(social_graph).evaluate(query)
        def canonical(rows):
            return sorted(
                tuple(sorted((v.name, str(t)) for v, t in row.items()))
                for row in rows
            )

        assert canonical(indexed) == canonical(scanned)


class TestAsk:
    def test_true(self, engine):
        assert engine.evaluate("ASK { <urn:alice> <urn:knows> <urn:bob> }") is True

    def test_false(self, engine):
        assert engine.evaluate("ASK { <urn:bob> <urn:knows> <urn:alice> }") is False


class TestOptional:
    def test_left_join_keeps_unmatched(self, engine):
        rows = engine.evaluate(
            "SELECT ?x ?a WHERE { ?x <urn:name> ?n OPTIONAL { ?x <urn:age> ?a } }"
        )
        assert len(rows) == 3  # Alice, Bob, Carol
        with_age = [r for r in rows if Variable("a") in r]
        assert len(with_age) == 2

    def test_optional_filter_semantics(self, engine):
        rows = engine.evaluate(
            "SELECT ?n WHERE { ?x <urn:name> ?n OPTIONAL { ?x <urn:age> ?a } "
            "FILTER(!BOUND(?a)) }"
        )
        assert names_of(rows) == ["Carol"]


class TestUnionMinus:
    def test_union(self, engine):
        rows = engine.evaluate(
            "SELECT ?x WHERE { { ?x <urn:knows> <urn:bob> } UNION "
            "{ ?x <urn:knows> <urn:dave> } }"
        )
        assert {r[Variable("x")] for r in rows} == {IRI("urn:alice"), IRI("urn:carol")}

    def test_minus(self, engine):
        rows = engine.evaluate(
            "SELECT ?x WHERE { ?x <urn:name> ?n MINUS { ?x <urn:age> ?a } }"
        )
        assert {r[Variable("x")] for r in rows} == {IRI("urn:carol")}

    def test_minus_no_shared_vars_keeps_all(self, engine):
        rows = engine.evaluate(
            "SELECT ?x WHERE { ?x <urn:name> ?n MINUS { ?z <urn:nothing> ?w } }"
        )
        assert len(rows) == 3


class TestBindValues:
    def test_bind(self, engine):
        rows = engine.evaluate(
            "SELECT ?l WHERE { ?x <urn:name> ?n BIND(STRLEN(?n) AS ?l) }"
        )
        lengths = sorted(int(str(r[Variable("l")])) for r in rows)
        assert lengths == [3, 5, 5]

    def test_bind_error_leaves_unbound(self, engine):
        rows = engine.evaluate(
            "SELECT ?l WHERE { ?x <urn:name> ?n BIND(?n + 1 AS ?l) }"
        )
        assert all(Variable("l") not in r for r in rows)

    def test_values_restricts(self, engine):
        rows = engine.evaluate(
            "SELECT ?n WHERE { ?x <urn:name> ?n VALUES ?x { <urn:alice> } }"
        )
        assert names_of(rows) == ["Alice"]

    def test_trailing_values(self, engine):
        rows = engine.evaluate(
            "SELECT ?n WHERE { ?x <urn:name> ?n } VALUES ?n { \"Bob\" }"
        )
        assert names_of(rows) == ["Bob"]


class TestFilters:
    def test_numeric_filter(self, engine):
        rows = engine.evaluate(
            "SELECT ?x WHERE { ?x <urn:age> ?a FILTER(?a > 27) }"
        )
        assert [r[Variable("x")] for r in rows] == [IRI("urn:alice")]

    def test_exists(self, engine):
        rows = engine.evaluate(
            "SELECT ?n WHERE { ?x <urn:name> ?n "
            "FILTER EXISTS { ?x <urn:age> ?a } }"
        )
        assert names_of(rows) == ["Alice", "Bob"]

    def test_not_exists(self, engine):
        rows = engine.evaluate(
            "SELECT ?n WHERE { ?x <urn:name> ?n "
            "FILTER NOT EXISTS { ?x <urn:age> ?a } }"
        )
        assert names_of(rows) == ["Carol"]

    def test_error_eliminates_solution(self, engine):
        # ?n + 1 errors for strings: all solutions dropped, not raised.
        rows = engine.evaluate(
            "SELECT ?n WHERE { ?x <urn:name> ?n FILTER(?n + 1 > 0) }"
        )
        assert rows == []


class TestModifiers:
    def test_order_by(self, engine):
        rows = engine.evaluate(
            "SELECT ?n WHERE { ?x <urn:name> ?n } ORDER BY ?n"
        )
        values = [str(r[Variable("n")]) for r in rows]
        assert values == ["Alice", "Bob", "Carol"]

    def test_order_by_desc_numeric(self, engine):
        rows = engine.evaluate(
            "SELECT ?a WHERE { ?x <urn:age> ?a } ORDER BY DESC(?a)"
        )
        assert [int(str(r[Variable("a")])) for r in rows] == [30, 25]

    def test_limit_offset(self, engine):
        rows = engine.evaluate(
            "SELECT ?n WHERE { ?x <urn:name> ?n } ORDER BY ?n LIMIT 1 OFFSET 1"
        )
        assert names_of(rows) == ["Bob"]

    def test_distinct(self, engine):
        rows = engine.evaluate(
            "SELECT DISTINCT ?p WHERE { ?s ?p ?o }"
        )
        assert len(rows) == 3  # knows, name, age

    def test_projection_drops_variables(self, engine):
        rows = engine.evaluate("SELECT ?n WHERE { ?x <urn:name> ?n }")
        assert all(set(r) == {Variable("n")} for r in rows)


class TestAggregation:
    def test_count_group_by(self, engine):
        rows = engine.evaluate(
            "SELECT ?x (COUNT(?f) AS ?c) WHERE { ?x <urn:knows> ?f } GROUP BY ?x"
        )
        by_subject = {str(r[Variable("x")]): int(str(r[Variable("c")])) for r in rows}
        assert by_subject["urn:carol"] == 2
        assert by_subject["urn:alice"] == 1

    def test_count_star(self, engine):
        rows = engine.evaluate("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }")
        assert int(str(rows[0][Variable("n")])) == 9

    def test_sum_avg_min_max(self, engine):
        rows = engine.evaluate(
            "SELECT (SUM(?a) AS ?s) (AVG(?a) AS ?avg) (MIN(?a) AS ?lo) "
            "(MAX(?a) AS ?hi) WHERE { ?x <urn:age> ?a }"
        )
        row = rows[0]
        assert int(str(row[Variable("s")])) == 55
        assert float(str(row[Variable("avg")])) == 27.5
        assert str(row[Variable("lo")]) == "25"
        assert str(row[Variable("hi")]) == "30"

    def test_having(self, engine):
        rows = engine.evaluate(
            "SELECT ?x (COUNT(?f) AS ?c) WHERE { ?x <urn:knows> ?f } "
            "GROUP BY ?x HAVING (COUNT(?f) > 1)"
        )
        assert len(rows) == 1
        assert str(rows[0][Variable("x")]) == "urn:carol"

    def test_group_concat(self, engine):
        rows = engine.evaluate(
            'SELECT (GROUP_CONCAT(?n; SEPARATOR="|") AS ?all) '
            "WHERE { ?x <urn:name> ?n } "
        )
        parts = set(str(rows[0][Variable("all")]).split("|"))
        assert parts == {"Alice", "Bob", "Carol"}


class TestPaths:
    def test_plus_closure(self, engine):
        rows = engine.evaluate(
            "SELECT ?x WHERE { <urn:alice> <urn:knows>+ ?x }"
        )
        reached = {str(r[Variable("x")]) for r in rows}
        assert reached == {"urn:alice", "urn:bob", "urn:carol", "urn:dave"}

    def test_star_includes_zero_length(self, engine):
        rows = engine.evaluate(
            "SELECT ?x WHERE { <urn:dave> <urn:knows>* ?x }"
        )
        assert {str(r[Variable("x")]) for r in rows} == {"urn:dave"}

    def test_question_mark(self, engine):
        rows = engine.evaluate(
            "SELECT ?x WHERE { <urn:alice> <urn:knows>? ?x }"
        )
        assert {str(r[Variable("x")]) for r in rows} == {"urn:alice", "urn:bob"}

    def test_inverse(self, engine):
        rows = engine.evaluate(
            "SELECT ?x WHERE { <urn:bob> ^<urn:knows> ?x }"
        )
        assert {str(r[Variable("x")]) for r in rows} == {"urn:alice"}

    def test_sequence(self, engine):
        rows = engine.evaluate(
            "SELECT ?x WHERE { <urn:alice> <urn:knows>/<urn:knows> ?x }"
        )
        assert {str(r[Variable("x")]) for r in rows} == {"urn:carol"}

    def test_alternative(self, engine):
        rows = engine.evaluate(
            "SELECT ?v WHERE { <urn:alice> <urn:name>|<urn:age> ?v }"
        )
        assert len(rows) == 2

    def test_negated(self, engine):
        rows = engine.evaluate(
            "SELECT ?v WHERE { <urn:alice> !<urn:knows> ?v }"
        )
        assert len(rows) == 2  # name + age

    def test_fixed_both_ends(self, engine):
        assert engine.evaluate(
            "ASK { <urn:alice> <urn:knows>+ <urn:dave> }"
        ) is True


class TestOtherForms:
    def test_construct(self, engine):
        graph = engine.evaluate(
            "CONSTRUCT { ?x <urn:label> ?n } WHERE { ?x <urn:name> ?n }"
        )
        assert len(graph) == 3
        assert Triple(IRI("urn:alice"), IRI("urn:label"), Literal("Alice")) in graph

    def test_describe(self, engine):
        graph = engine.evaluate("DESCRIBE <urn:alice>")
        # alice: 1 knows out, 1 knows in, name, age.
        assert len(graph) == 4

    def test_describe_variable(self, engine):
        graph = engine.evaluate(
            "DESCRIBE ?x WHERE { ?x <urn:age> ?a FILTER(?a > 27) }"
        )
        assert len(graph) == 4

    def test_graph_clause_named_graphs(self, social_graph):
        named = Graph()
        named.add(Triple(IRI("urn:n1"), IRI("urn:p"), IRI("urn:n2")))
        engine = IndexedEngine(social_graph, named_graphs={IRI("urn:g"): named})
        rows = engine.evaluate("SELECT ?s WHERE { GRAPH <urn:g> { ?s ?p ?o } }")
        assert len(rows) == 1
        rows = engine.evaluate("SELECT ?g WHERE { GRAPH ?g { ?s ?p ?o } }")
        assert rows[0][Variable("g")] == IRI("urn:g")

    def test_missing_named_graph_empty(self, engine):
        rows = engine.evaluate("SELECT * WHERE { GRAPH <urn:none> { ?s ?p ?o } }")
        assert rows == []

    def test_service_raises(self, engine):
        with pytest.raises(EvaluationError):
            engine.evaluate("SELECT * WHERE { SERVICE <urn:e> { ?s ?p ?o } }")

    def test_subquery(self, engine):
        rows = engine.evaluate(
            "SELECT ?n WHERE { { SELECT ?x WHERE { ?x <urn:age> ?a "
            "FILTER(?a > 27) } } ?x <urn:name> ?n }"
        )
        assert names_of(rows) == ["Alice"]


class TestReordering:
    def test_bgp_order_prefers_selective(self, social_graph):
        from repro.engine import evaluate_bgp_order

        query = parse_query(
            "SELECT * WHERE { ?a ?p ?b . ?x <urn:age> ?v . "
            "<urn:alice> <urn:name> ?n }"
        )
        triples = [e for e in query.pattern.elements]
        ordered = evaluate_bgp_order(triples, social_graph)
        # Most selective (fully constant-ish) first, full scan last.
        assert ordered[0].subject == IRI("urn:alice")
        assert isinstance(ordered[-1].predicate, Variable)
