"""Tests for the stable public facade (repro.api)."""

import pytest

from repro.analysis.study import study_corpus
from repro.api import (
    AnalysisRequest,
    AnalysisSession,
    CoverageCaveats,
    analyze,
    analyze_corpora,
    load_study,
    merge_studies,
)
from repro.logs import build_query_log
from repro.reporting import render_study

TEXTS = [
    "SELECT ?x WHERE { ?x <urn:p> ?y }",
    "ASK { ?a <urn:q> ?b . ?b <urn:r> ?a }",
    "SELECT * WHERE { ?s ?p ?o . FILTER(?o > 3) }",
    "ASK { ?s <urn:p>+ ?o }",
    "broken {",
]


@pytest.fixture()
def query_files(tmp_path):
    first = tmp_path / "alpha.rq"
    first.write_text("\n".join(TEXTS[:3]) + "\n")
    second = tmp_path / "beta.rq"
    second.write_text("\n".join(TEXTS[3:]) + "\n")
    return first, second


class TestAnalyze:
    def test_matches_low_level_drivers(self, query_files):
        first, second = query_files
        result = analyze(first, second)
        logs = {
            "alpha": build_query_log("alpha", TEXTS[:3]),
            "beta": build_query_log("beta", TEXTS[3:]),
        }
        assert result.study == study_corpus(logs)
        assert result.render("text").startswith("Table 1")

    def test_render_text_equals_render_study_with_logs(self, query_files):
        result = analyze(*query_files)
        assert result.render("text") == render_study(result.study, result.logs)

    def test_corpora_entry_point(self):
        result = analyze_corpora({"mem": TEXTS})
        assert result.study.datasets["mem"].total == len(TEXTS)
        assert result.logs is not None and "mem" in result.logs

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 2, "chunk_size": 1},
            {"stream": True},
            {"stream": True, "workers": 2, "chunk_size": 1},
        ],
    )
    def test_execution_modes_are_byte_identical(self, query_files, kwargs):
        serial = analyze(*query_files)
        other = analyze(*query_files, **kwargs)
        assert other.study == serial.study
        assert other.render("text") == serial.render("text")

    def test_dedup_false_weights_duplicates(self):
        texts = ["ASK { ?s ?p ?o }"] * 3
        unique = analyze_corpora({"mem": texts})
        valid = analyze_corpora({"mem": texts}, dedup=False)
        assert unique.study.query_count == 1
        assert valid.study.query_count == 3

    def test_metrics_subset(self, query_files):
        result = analyze(*query_files, metrics=("shallow",))
        assert result.study.query_count > 0
        assert not result.study.operator_sets  # operators pass not run

    def test_profile(self, query_files):
        result = analyze(*query_files, profile=True)
        assert result.profile is not None
        assert result.profile.queries == result.study.query_count

    def test_caveats(self, query_files):
        clean = analyze(*query_files)
        assert clean.caveats == CoverageCaveats(0, 0)
        assert clean.caveats.clean
        limited = analyze(*query_files, shape_node_limit=1)
        assert limited.caveats.shape_limit_skipped > 0
        assert not limited.caveats.clean


class TestRequestValidation:
    def test_rejects_inputs_and_corpora_together(self, query_files):
        request = AnalysisRequest(inputs=(query_files[0],), corpora={"m": []})
        with pytest.raises(ValueError, match="not both"):
            AnalysisSession().run(request)

    def test_rejects_empty_request(self):
        with pytest.raises(ValueError, match="nothing to analyze"):
            AnalysisSession().run(AnalysisRequest())

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            AnalysisRequest(corpora={"m": []}, workers=0).validate()

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            AnalysisRequest(corpora={"m": []}, chunk_size=0).validate()

    def test_rejects_unknown_metrics(self):
        with pytest.raises(ValueError, match="unknown metrics"):
            AnalysisRequest(corpora={"m": []}, metrics=("nope",)).validate()

    def test_rejects_colliding_dataset_names(self, tmp_path):
        first = tmp_path / "day.log"
        first.write_text("ASK { ?s ?p ?o }\n")
        second = tmp_path / "day.rq"
        second.write_text("ASK { ?s ?p ?o }\n")
        with pytest.raises(ValueError, match="dataset name"):
            AnalysisRequest(inputs=(first, second)).validate()


class TestResult:
    def test_save_load_round_trip(self, query_files, tmp_path):
        result = analyze(*query_files)
        path = tmp_path / "study.json"
        result.save(path)
        assert load_study(path) == result.study
        from repro.api import AnalysisResult

        loaded = AnalysisResult.load(path)
        assert loaded.study == result.study
        assert loaded.logs is None
        # A loaded result still renders Table 1 (pipeline counters
        # travel on the per-dataset stats).
        assert loaded.render("text") == result.render("text")

    def test_result_merge(self, query_files):
        first, second = query_files
        combined = analyze(first).merge(analyze(second))
        direct = analyze(first, second)
        assert combined.study == direct.study
        assert combined.logs is not None and set(combined.logs) == {"alpha", "beta"}

    def test_result_merge_overlapping_datasets_drops_logs(self, query_files):
        first, _ = query_files
        combined = analyze(first).merge(analyze(first))
        # Stats sum; stale single-shard logs would contradict them, so
        # they are dropped rather than silently shadowed.
        assert combined.logs is None
        assert combined.study.datasets["alpha"].total == 2 * 3
        assert combined.render("text").startswith("Table 1")

    def test_merge_studies_requires_input(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_studies([])

    def test_merge_studies_explicit_dedup_keeps_old_signature(self):
        # The pre-1.1 root-level signature: explicit flavour, empty ok.
        empty = merge_studies([], dedup=True)
        assert empty.dedup and empty.query_count == 0
        shard = analyze_corpora({"m": ["ASK { ?s ?p ?o }"] * 2}, dedup=False).study
        merged = merge_studies([shard], dedup=False)
        assert not merged.dedup and merged.query_count == 2
        with pytest.raises(ValueError, match="cannot merge"):
            merge_studies([shard], dedup=True)
