"""Tests for the warehouse HTTP service (``repro serve``).

Each test drives a live ``WarehouseServer`` on an ephemeral port with
stdlib ``urllib`` — the same stack a CI smoke job uses.  The headline
contract: ``GET /report`` returns byte-for-byte what ``repro report``
prints for the equivalently merged snapshot.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis.passes import PASS_NAMES
from repro.api import analyze_corpora
from repro.exceptions import WarehouseError
from repro.reporting import render_report
from repro.warehouse import StudyWarehouse
from repro.warehouse.service import DEFAULT_LIMIT, MAX_LIMIT, start_server

QUERY_POOL = [
    "SELECT ?x WHERE { ?x <urn:p> ?y }",
    "SELECT DISTINCT ?x WHERE { ?x <urn:p> ?y . ?y <urn:q> ?z }",
    "ASK { ?a <urn:q> ?b . ?b <urn:r> ?a }",
    "ASK { ?s <urn:p>+ ?o }",
    "SELECT * WHERE { ?s ?p ?o . FILTER(?o > 3) }",
    "SELECT ?s WHERE { ?s <urn:p> ?o . OPTIONAL { ?s <urn:q> ?t } }",
    "CONSTRUCT { ?s <urn:p> ?o } WHERE { ?s <urn:p> ?o }",
    "not a query at all {",
]


@pytest.fixture(scope="module")
def merged_study():
    study = analyze_corpora(
        {"alpha": QUERY_POOL + QUERY_POOL[:3]},
        metrics=PASS_NAMES + ("streaks",),
    ).study
    other = analyze_corpora(
        {"beta": QUERY_POOL[:5]}, metrics=PASS_NAMES + ("streaks",)
    ).study
    return study.merge(other)


@pytest.fixture(scope="module")
def server(tmp_path_factory, merged_study):
    path = tmp_path_factory.mktemp("service") / "study.warehouse"
    with StudyWarehouse.open(path) as warehouse:
        warehouse.ingest(merged_study, source="merged.json")
    handle = start_server(path)
    thread = threading.Thread(target=handle.serve_forever, daemon=True)
    thread.start()
    yield handle
    handle.shutdown()
    handle.close()
    thread.join(timeout=5)


def fetch(server, path):
    """GET *path*; returns (status, parsed-or-raw body, content type)."""
    try:
        with urllib.request.urlopen(server.url.rstrip("/") + path) as response:
            status = response.status
            content_type = response.headers["Content-Type"]
            raw = response.read()
    except urllib.error.HTTPError as error:
        status = error.code
        content_type = error.headers["Content-Type"]
        raw = error.read()
    if content_type.startswith("application/json"):
        return status, json.loads(raw), content_type
    return status, raw.decode("utf-8"), content_type


class TestEndpoints:
    def test_index_lists_endpoints(self, server):
        status, body, _ = fetch(server, "/")
        assert status == 200
        paths = {entry["path"] for entry in body["endpoints"]}
        assert "/datasets" in paths
        assert body["warehouse"]["datasets"] == 2

    def test_report_bytes_equal_direct_report(self, server, merged_study):
        status, body, content_type = fetch(server, "/report")
        assert status == 200
        assert content_type.startswith("text/plain")
        expected = render_report(merged_study, "text")
        if not expected.endswith("\n"):
            expected += "\n"
        assert body == expected

    def test_report_other_formats(self, server, merged_study):
        status, body, _ = fetch(server, "/report?format=json")
        assert status == 200
        assert body == json.loads(render_report(merged_study, "json"))
        status, body, _ = fetch(server, "/report?format=markdown")
        assert status == 200

    def test_datasets_listing_and_lookup(self, server):
        status, page, _ = fetch(server, "/datasets")
        assert status == 200
        assert page["total"] == 2
        assert page["limit"] == DEFAULT_LIMIT
        assert [row["name"] for row in page["items"]] == ["alpha", "beta"]
        status, row, _ = fetch(server, "/datasets/alpha")
        assert status == 200
        assert row["name"] == "alpha"

    def test_pagination(self, server):
        status, page, _ = fetch(server, "/datasets?limit=1&offset=1")
        assert status == 200
        assert page["total"] == 2
        assert page["offset"] == 1
        assert [row["name"] for row in page["items"]] == ["beta"]

    def test_table_cells_and_text(self, server, merged_study):
        status, page, _ = fetch(server, "/tables/1")
        assert status == 200
        assert {cell["section"] for cell in page["items"]} == {"table1"}
        status, block, content_type = fetch(server, "/tables/1?format=text")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert block.rstrip("\n") in render_report(merged_study, "text")

    def test_dataset_scoped_table(self, server):
        status, page, _ = fetch(server, "/datasets/alpha/tables/1")
        assert status == 200
        assert page["total"] > 0
        assert {cell["row"] for cell in page["items"]} == {"alpha"}

    def test_streaks_and_caveats(self, server):
        status, page, _ = fetch(server, "/streaks")
        assert status == 200
        assert page["total"] == 2
        assert page["items"][0]["streak_count"] > 0
        status, caveats, _ = fetch(server, "/caveats")
        assert status == 200
        assert caveats["clean"] is True

    def test_search(self, server):
        status, page, _ = fetch(server, "/search?q=urn")
        assert status == 200
        assert page["total"] > 0
        assert all("urn" in row["text"] for row in page["items"])


class TestErrors:
    @pytest.mark.parametrize(
        "path, status, needle",
        [
            ("/nope", 404, "no such endpoint"),
            ("/datasets/missing", 404, "no such dataset"),
            ("/tables/9", 404, "tables 1-6"),
            ("/tables/zero", 400, "table must be"),
            ("/tables/1?format=csv", 400, "'json' or 'text'"),
            ("/search", 400, "missing search term"),
            ("/report?format=bogus", 400, "unknown report format"),
            ("/datasets?limit=0", 400, f"1..{MAX_LIMIT}"),
            (f"/datasets?limit={MAX_LIMIT + 1}", 400, f"1..{MAX_LIMIT}"),
            ("/datasets?offset=-1", 400, "offset must be"),
            ("/datasets?limit=abc", 400, "must be an integer"),
        ],
    )
    def test_error_responses_are_json(self, server, path, status, needle):
        got_status, body, content_type = fetch(server, path)
        assert got_status == status
        assert content_type.startswith("application/json")
        assert needle in body["error"]

    def test_start_server_rejects_missing_warehouse(self, tmp_path):
        with pytest.raises(WarehouseError, match="no such warehouse"):
            start_server(tmp_path / "nope.db")

    def test_concurrent_requests(self, server):
        """Many threads against the one shared handle: every response
        arrives whole (the handler lock serializes SQLite access)."""
        results = []

        def hit():
            results.append(fetch(server, "/datasets")[0])

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert results == [200] * 8
