"""Incremental watch mode: crash/kill/fuzz hardening (ISSUE 10).

The contract under test — invariant 12 of ``docs/ARCHITECTURE.md``:
for ANY split of a log into watch cycles, the checkpointed study is
byte-identical to a one-shot ``repro analyze`` of the full log.  The
layers here:

* property tests: arbitrary partitions ≡ one-shot (snapshot bytes AND
  rendered report), with fresh sessions per cycle so every cycle
  exercises the resume path, and streak chains spanning three or more
  checkpoint boundaries;
* kill tests: a subprocess appending and checkpointing is SIGKILLed at
  randomized points; the cursor/study checkpoint pair is never torn,
  and resume always converges to the one-shot bytes;
* tail-safety: unterminated lines and blocks are held back until
  ``drain``; gzip sources grow by appended members; truncation and
  prefix rewrites fail loudly instead of double-counting;
* codec: the lean chain records round-trip, and legacy full-position
  chains (snapshot schema 2) decode to the identical accumulator;
* memory: open-chain state stays O(window) per chain on a 50k-entry
  single-streak stream (the unbounded-growth regression);
* the ``diff`` reporter's format is golden-pinned.
"""

import gzip
import json
import random
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.incremental import _consumable_length, WatchSession
from repro.analysis.snapshot import load_study, streaks_from_dict
from repro.analysis.streaks import StreakAccumulator
from repro.api import analyze_corpora
from repro.cli import main
from repro.exceptions import WatchStateError
from repro.reporting import render_diff, render_report

from loggen import unique_query_pool
from test_golden_reports import check_golden

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

METRICS = ("shallow", "operators", "streaks")
WINDOW = 5

# A pool mixing parseable queries (several template families, so
# streaks form), an invalid entry (Valid < Total) and duplicates
# (Unique < Valid) — the shape real endpoint logs have.
POOL = unique_query_pool(24)
STREAM = [POOL[i % len(POOL)] for i in range(40)] + POOL[:8]


def write_lines(path: Path, texts, mode: str = "a") -> None:
    with path.open(mode, encoding="utf-8") as handle:
        for text in texts:
            handle.write(text.replace("\n", "\\n") + "\n")


def one_shot(texts, **kwargs):
    """The one-shot reference study for an in-memory stream."""
    result = analyze_corpora(
        {"day": list(texts)},
        metrics=METRICS,
        streak_window=WINDOW,
        **kwargs,
    )
    return result.study


def study_bytes(study) -> str:
    return json.dumps(study.to_dict(), sort_keys=True)


def run_watch_cycles(path: Path, state: Path, cuts, texts=STREAM):
    """Append *texts* slice by slice, one fresh WatchSession per cycle."""
    bounds = [0] + list(cuts) + [len(texts)]
    outcomes = []
    for index, (start, stop) in enumerate(zip(bounds, bounds[1:])):
        write_lines(path, texts[start:stop])
        session = WatchSession(
            [str(path)], state, metrics=METRICS, streak_window=WINDOW
        )
        outcomes.append(session.cycle(drain=index == len(bounds) - 2))
    return outcomes


class TestInvariant12:
    """Checkpointed study ≡ one-shot study, bytes and rendering."""

    def test_three_cycles_match_one_shot(self, tmp_path):
        source = tmp_path / "day.rq"
        state = tmp_path / "state"
        run_watch_cycles(source, state, cuts=[13, 31])
        checkpointed = load_study(state / "study.json")
        reference = one_shot(STREAM)
        assert study_bytes(checkpointed) == study_bytes(reference)
        assert render_report(checkpointed, "text") == render_report(
            reference, "text"
        )

    def test_empty_and_degenerate_cycles(self, tmp_path):
        """Cycles that ingest nothing are identity; the first cycle of
        an empty file still registers the dataset like one-shot does."""
        source = tmp_path / "day.rq"
        source.write_text("", encoding="utf-8")
        state = tmp_path / "state"
        session = WatchSession(
            [str(source)], state, metrics=METRICS, streak_window=WINDOW
        )
        first = session.cycle()
        assert first.total_new == 0 and not first.changed
        assert list(session.study.datasets) == ["day"]
        idle = session.cycle()
        assert not idle.changed and idle.diff == ""
        write_lines(source, STREAM)
        session.cycle(drain=True)
        assert study_bytes(session.study) == study_bytes(one_shot(STREAM))

    def test_per_entry_cycles_match_one_shot(self, tmp_path):
        """The finest split: one watch cycle per appended entry."""
        texts = STREAM[:12]
        source = tmp_path / "day.rq"
        state = tmp_path / "state"
        run_watch_cycles(source, state, cuts=range(1, len(texts)), texts=texts)
        assert study_bytes(load_study(state / "study.json")) == study_bytes(
            one_shot(texts)
        )

    def test_multi_dataset_interleaved_growth(self, tmp_path):
        """Datasets growing in alternating cycles still report with the
        one-shot counter order (dataset-major, not cycle-major)."""
        alpha, beta = tmp_path / "alpha.rq", tmp_path / "beta.rq"
        state = tmp_path / "state"
        slices = [
            (POOL[:6], []),
            ([], POOL[6:14]),
            (POOL[14:20], POOL[2:6]),
        ]
        for index, (for_alpha, for_beta) in enumerate(slices):
            write_lines(alpha, for_alpha)
            write_lines(beta, for_beta)
            session = WatchSession(
                [str(alpha), str(beta)],
                state,
                metrics=METRICS,
                streak_window=WINDOW,
            )
            session.cycle(drain=index == len(slices) - 1)
        reference = analyze_corpora(
            {
                "alpha": POOL[:6] + POOL[14:20],
                "beta": POOL[6:14] + POOL[2:6],
            },
            metrics=METRICS,
            streak_window=WINDOW,
        ).study
        assert study_bytes(load_study(state / "study.json")) == study_bytes(
            reference
        )

    def test_default_metrics_full_pipeline(self, tmp_path):
        """One (slower) case without a metrics selection: every
        per-query pass of the default pipeline folds incrementally."""
        texts = STREAM[:15]
        source, state = tmp_path / "day.rq", tmp_path / "state"
        write_lines(source, texts[:7])
        WatchSession([str(source)], state).cycle()
        write_lines(source, texts[7:])
        WatchSession([str(source)], state).cycle(drain=True)
        reference = analyze_corpora({"day": texts}).study
        assert study_bytes(load_study(state / "study.json")) == study_bytes(
            reference
        )

    def test_directory_source_grows_by_files(self, tmp_path):
        """A directory dataset: existing files grow and new files
        appear (in sorted-name order, the one-shot order)."""
        logs = tmp_path / "logs"
        logs.mkdir()
        state = tmp_path / "state"
        write_lines(logs / "a.rq", POOL[:5])
        WatchSession([str(logs)], state, metrics=METRICS,
                     streak_window=WINDOW).cycle()
        write_lines(logs / "a.rq", POOL[5:9])
        write_lines(logs / "b.rq", POOL[9:12])
        WatchSession([str(logs)], state, metrics=METRICS,
                     streak_window=WINDOW).cycle(drain=True)
        reference = analyze_corpora(
            {"logs": POOL[:12]}, metrics=METRICS, streak_window=WINDOW
        ).study
        assert study_bytes(load_study(state / "study.json")) == study_bytes(
            reference
        )

    def test_gzip_source_appended_members(self, tmp_path):
        """Gzip cursors count decompressed bytes, so a log growing by
        appended gzip members (the standard rotate-free pattern)
        resumes exactly."""
        source = tmp_path / "day.rq.gz"
        state = tmp_path / "state"
        for index, chunk in enumerate((POOL[:7], POOL[7:16])):
            with gzip.open(source, "ab") as handle:
                payload = "".join(
                    text.replace("\n", "\\n") + "\n" for text in chunk
                )
                handle.write(payload.encode("utf-8"))
            WatchSession(
                [str(source)], state, metrics=METRICS, streak_window=WINDOW
            ).cycle(drain=index == 1)
        reference = analyze_corpora(
            {"day": POOL[:16]}, metrics=METRICS, streak_window=WINDOW
        ).study
        assert study_bytes(load_study(state / "study.json")) == study_bytes(
            reference
        )


class TestTailBoundaries:
    def test_unterminated_line_held_back(self, tmp_path):
        source = tmp_path / "day.rq"
        state = tmp_path / "state"
        write_lines(source, POOL[:3])
        with source.open("a", encoding="utf-8") as handle:
            handle.write("SELECT ?half WHERE { ?x")  # writer mid-flush
        session = WatchSession(
            [str(source)], state, metrics=METRICS, streak_window=WINDOW
        )
        outcome = session.cycle()
        assert outcome.new_entries["day"] == 3  # the torn tail waits
        with source.open("a", encoding="utf-8") as handle:
            handle.write(" <urn:p> ?y }\n")
        outcome = session.cycle(drain=True)
        assert outcome.new_entries["day"] == 1  # ...and arrives whole
        reference = one_shot(POOL[:3] + ["SELECT ?half WHERE { ?x <urn:p> ?y }"])
        assert study_bytes(session.study) == study_bytes(reference)

    def test_blocks_held_back_until_blank_line(self, tmp_path):
        blocks = [
            "SELECT ?x\nWHERE { ?x <urn:a> ?y }",
            "ASK {\n ?s <urn:b> ?o\n}",
            "SELECT ?z\nWHERE { ?z <urn:c> ?w }",
        ]
        source = tmp_path / "day.rq"
        source.write_text(
            blocks[0] + "\n\n" + blocks[1] + "\n\n" + blocks[2] + "\n",
            encoding="utf-8",
        )
        state = tmp_path / "state"
        session = WatchSession(
            [str(source)], state, metrics=METRICS, streak_window=WINDOW
        )
        # No trailing blank line: the last block may still be growing.
        assert session.cycle().new_entries["day"] == 2
        with source.open("a", encoding="utf-8") as handle:
            handle.write("LIMIT 3\n")
        outcome = session.cycle(drain=True)
        assert outcome.new_entries["day"] == 1
        reference = one_shot(blocks[:2] + [blocks[2] + "\nLIMIT 3"])
        assert study_bytes(session.study) == study_bytes(reference)

    @pytest.mark.parametrize(
        "data, format, expected",
        [
            (b"a\nb\nc", "lines", 4),
            (b"a\nb\n", "lines", 4),
            (b"", "lines", 0),
            (b"no newline", "lines", 0),
            (b"q1\n\nq2 partial", "blocks", 4),
            (b"q1\nq1b\n", "blocks", 0),
            (b"q1\n \t\nq2\n", "blocks", 6),
        ],
    )
    def test_consumable_length(self, data, format, expected):
        assert _consumable_length(data, format, drain=False) == expected
        assert _consumable_length(data, format, drain=True) == len(data)


class TestSourceSafety:
    def make_session(self, tmp_path):
        source = tmp_path / "day.rq"
        state = tmp_path / "state"
        write_lines(source, POOL[:6])
        session = WatchSession(
            [str(source)], state, metrics=METRICS, streak_window=WINDOW
        )
        session.cycle()
        return source, state

    def test_truncated_source_fails_loudly(self, tmp_path):
        source, state = self.make_session(tmp_path)
        source.write_text("fresh\n", encoding="utf-8")
        with pytest.raises(WatchStateError, match="shrank below"):
            WatchSession(
                [str(source)], state, metrics=METRICS, streak_window=WINDOW
            ).cycle()

    def test_rewritten_prefix_fails_loudly(self, tmp_path):
        source, state = self.make_session(tmp_path)
        data = source.read_bytes()
        source.write_bytes(b"X" + data[1:] + b"more\n")
        with pytest.raises(WatchStateError, match="rewritten behind"):
            WatchSession(
                [str(source)], state, metrics=METRICS, streak_window=WINDOW
            ).cycle()

    def test_deleted_source_fails_loudly(self, tmp_path):
        source, state = self.make_session(tmp_path)
        source.unlink()
        with pytest.raises(WatchStateError, match="unreadable"):
            WatchSession(
                [str(source)], state, metrics=METRICS, streak_window=WINDOW
            ).cycle()

    def test_corrupt_checkpoint_fails_loudly(self, tmp_path):
        source, state = self.make_session(tmp_path)
        (state / "checkpoint.json").write_text("{torn", encoding="utf-8")
        with pytest.raises(WatchStateError, match="unreadable checkpoint"):
            WatchSession(
                [str(source)], state, metrics=METRICS, streak_window=WINDOW
            )

    def test_config_change_fails_loudly(self, tmp_path):
        source, state = self.make_session(tmp_path)
        with pytest.raises(WatchStateError, match="cannot mix"):
            WatchSession(
                [str(source)], state, metrics=METRICS, streak_window=WINDOW + 1
            )

    def test_input_change_fails_loudly(self, tmp_path):
        source, state = self.make_session(tmp_path)
        other = tmp_path / "other.rq"
        write_lines(other, POOL[:2])
        with pytest.raises(WatchStateError, match="watches inputs"):
            WatchSession(
                [str(other)], state, metrics=METRICS, streak_window=WINDOW
            )

    def test_duplicate_dataset_names_rejected(self, tmp_path):
        write_lines(tmp_path / "day.rq", POOL[:2])
        write_lines(tmp_path / "day.log", POOL[:2])
        with pytest.raises(ValueError, match="duplicate dataset"):
            WatchSession(
                [str(tmp_path / "day.rq"), str(tmp_path / "day.log")],
                tmp_path / "state",
            )

    def test_unknown_metric_rejected_up_front(self, tmp_path):
        with pytest.raises(ValueError, match="unknown metrics"):
            WatchSession(
                [str(tmp_path / "day.rq")],
                tmp_path / "state",
                metrics=("streeks",),
            )

    def test_malformed_cursor_rejected(self, tmp_path):
        source, state = self.make_session(tmp_path)
        checkpoint = state / "checkpoint.json"
        data = json.loads(checkpoint.read_text(encoding="utf-8"))
        data["cursors"][0]["offset"] = -3
        checkpoint.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(WatchStateError, match="malformed cursor"):
            WatchSession(
                [str(source)], state, metrics=METRICS, streak_window=WINDOW
            )


# ---------------------------------------------------------------------------
# Kill tests: SIGKILL a checkpointing watcher at randomized points.
# ---------------------------------------------------------------------------

_DRIVER = """
import sys
sys.path.insert(0, {src!r})
from pathlib import Path
from repro.api import WatchSession

log, state = Path({log!r}), {state!r}
lines = Path({pool!r}).read_text(encoding="utf-8").splitlines()
data = log.read_bytes() if log.exists() else b""
data = data[: data.rfind(b"\\n") + 1]  # drop a torn tail from a prior kill
log.write_bytes(data)
appended = data.count(b"\\n")
for line in lines[appended:]:
    with log.open("a", encoding="utf-8") as handle:
        handle.write(line + "\\n")
    WatchSession(
        [str(log)], state, metrics=("shallow", "operators", "streaks"),
        streak_window=5,
    ).cycle()
print("DRIVER-DONE", flush=True)
"""


class TestKillResume:
    """The crash-resume contract: a SIGKILL anywhere — including inside
    a checkpoint write — never tears the cursor/study pair, and
    resuming converges to the one-shot bytes."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sigkill_mid_run_converges(self, tmp_path, seed):
        texts = STREAM[:20]
        pool_file = tmp_path / "pool.txt"
        pool_file.write_text(
            "".join(t.replace("\n", "\\n") + "\n" for t in texts),
            encoding="utf-8",
        )
        log, state = tmp_path / "day.rq", tmp_path / "state"
        script = _DRIVER.format(
            src=SRC_DIR, log=str(log), state=str(state), pool=str(pool_file)
        )
        process = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        time.sleep(random.Random(seed).uniform(0.2, 1.5))
        process.kill()
        process.wait()

        # Never torn: whatever instant the kill hit, the checkpoint
        # must be a loadable cursor+study pair (or not exist at all).
        if (state / "checkpoint.json").exists():
            resumed = WatchSession(
                [str(log)], state, metrics=METRICS, streak_window=WINDOW
            )
            assert resumed.generation >= 1

        # Converge: drop any torn trailing line the kill left behind
        # (the watch cursor never consumed past the last newline, so
        # truncating the tail is safe), append what is missing, drain.
        data = log.read_bytes() if log.exists() else b""
        data = data[: data.rfind(b"\n") + 1]
        log.write_bytes(data)
        write_lines(log, texts[data.count(b"\n"):])
        WatchSession(
            [str(log)], state, metrics=METRICS, streak_window=WINDOW
        ).cycle(drain=True)
        assert study_bytes(load_study(state / "study.json")) == study_bytes(
            one_shot(texts)
        )

    def test_kill_inside_checkpoint_write_keeps_previous(
        self, tmp_path, monkeypatch
    ):
        """Deterministic torn-write probe: die exactly at the replace
        step of the checkpoint write; the previous checkpoint must
        survive intact and re-ingesting converges."""
        source, state = tmp_path / "day.rq", tmp_path / "state"
        write_lines(source, POOL[:4])
        session = WatchSession(
            [str(source)], state, metrics=METRICS, streak_window=WINDOW
        )
        session.cycle()
        before = (state / "checkpoint.json").read_bytes()

        from repro import ioutils

        real_replace = ioutils.os.replace

        def exploding_replace(src, dst):
            raise OSError("simulated crash at replace")

        write_lines(source, POOL[4:9])
        monkeypatch.setattr(ioutils.os, "replace", exploding_replace)
        crashing = WatchSession(
            [str(source)], state, metrics=METRICS, streak_window=WINDOW
        )
        with pytest.raises(OSError, match="simulated crash"):
            crashing.cycle()
        monkeypatch.setattr(ioutils.os, "replace", real_replace)
        assert (state / "checkpoint.json").read_bytes() == before

        WatchSession(
            [str(source)], state, metrics=METRICS, streak_window=WINDOW
        ).cycle(drain=True)
        assert study_bytes(load_study(state / "study.json")) == study_bytes(
            one_shot(POOL[:9])
        )


# ---------------------------------------------------------------------------
# Property tests: arbitrary partitions ≡ one-shot.
# ---------------------------------------------------------------------------

texts_strategy = st.lists(
    st.sampled_from(POOL), min_size=1, max_size=24
)


@settings(max_examples=12, deadline=None)
@given(texts=texts_strategy, data=st.data())
def test_arbitrary_partition_equals_one_shot(tmp_path_factory, texts, data):
    cuts = sorted(
        data.draw(
            st.lists(st.integers(0, len(texts)), min_size=0, max_size=4)
        )
    )
    tmp_path = tmp_path_factory.mktemp("watch-prop")
    source, state = tmp_path / "day.rq", tmp_path / "state"
    run_watch_cycles(source, state, cuts, texts=texts)
    checkpointed = load_study(state / "study.json")
    reference = one_shot(texts)
    assert study_bytes(checkpointed) == study_bytes(reference)
    assert render_report(checkpointed, "text") == render_report(
        reference, "text"
    )


@settings(max_examples=8, deadline=None)
@given(n_cycles=st.integers(4, 7))
def test_streak_spans_three_checkpoint_boundaries(tmp_path_factory, n_cycles):
    """One long refinement streak sliced across >= 3 checkpoints: the
    open-chain resume token must carry it through every stitch."""
    family = 'SELECT ?x WHERE {{ ?x <urn:name> "Alice{}" }}'
    texts = [family.format(i) for i in range(2 * n_cycles)]
    tmp_path = tmp_path_factory.mktemp("watch-streak")
    source, state = tmp_path / "day.rq", tmp_path / "state"
    run_watch_cycles(
        source, state, cuts=range(2, len(texts), 2), texts=texts
    )
    final = load_study(state / "study.json")
    accumulator = final.datasets["day"].streaks
    reference = one_shot(texts).datasets["day"].streaks
    assert accumulator == reference
    assert accumulator.longest == len(texts)  # one unbroken streak
    assert accumulator.streak_count == 1


# ---------------------------------------------------------------------------
# Lean chain codec: round-trip, and legacy (schema-2) equivalence.
# ---------------------------------------------------------------------------

chain_streams = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 2)).map(
        lambda fv: POOL[(fv[0] * 5 + fv[1]) % len(POOL)]
    ),
    min_size=0,
    max_size=30,
)


@settings(max_examples=25, deadline=None)
@given(stream=chain_streams, window=st.sampled_from([1, 3, 5, 64]))
def test_lean_chain_codec_round_trip(stream, window):
    accumulator = StreakAccumulator(window=window)
    for text in stream:
        accumulator.push(text)
    data = json.loads(json.dumps(accumulator.to_dict()))
    reloaded = streaks_from_dict(data, "roundtrip")
    assert reloaded == accumulator
    assert json.dumps(reloaded.to_dict()) == json.dumps(accumulator.to_dict())


@settings(max_examples=25, deadline=None)
@given(stream=chain_streams)
def test_legacy_positions_decode_to_lean_chains(stream):
    """Schema-2 chains carried every member position; with a window
    wider than the stream the head region covers all members, so the
    legacy encoding can be reconstructed exactly — and must decode to
    the identical accumulator the lean codec produces."""
    accumulator = StreakAccumulator(window=64)
    for text in stream:
        accumulator.push(text)
    lean = accumulator.to_dict()
    legacy = json.loads(json.dumps(lean))
    for chain, record in zip(accumulator.chains, legacy["chains"]):
        assert len(chain.head_positions) == chain.length  # window covers all
        record.clear()
        record["positions"] = list(chain.head_positions)
        record["tail"] = chain.tail
    assert streaks_from_dict(legacy, "legacy") == streaks_from_dict(
        json.loads(json.dumps(lean)), "lean"
    )


def test_legacy_positions_beyond_window_truncate_to_head():
    """A legacy chain whose members extend past the window keeps only
    head-region positions after conversion (the merge never needs the
    rest) while span and length survive."""
    legacy = {
        "window": 3,
        "threshold": 0.25,
        "length": 12,
        "head": ["a", "b", "c"],
        "closed": [],
        "chains": [{"positions": [1, 2, 5, 9], "tail": "q"}],
    }
    accumulator = streaks_from_dict(legacy, "legacy")
    chain = accumulator.chains[0]
    assert (chain.start, chain.length, chain.end) == (1, 4, 9)
    assert chain.head_positions == [1, 2]
    assert chain.tail == "q"


# ---------------------------------------------------------------------------
# Memory regression: open-chain state is O(window), not O(stream).
# ---------------------------------------------------------------------------


def test_single_streak_state_is_window_bounded():
    """50k near-identical queries form one enormous streak; the open
    chain must retain O(window) state (the pre-lean representation
    kept every member position — 50k ints — which is exactly the
    unbounded growth this pins down)."""
    window = 30
    accumulator = StreakAccumulator(window=window)
    text = 'SELECT ?x WHERE { ?x <urn:name> "Alice" }'
    for _ in range(50_000):
        accumulator.push(text)
    assert accumulator.longest == 50_000
    assert len(accumulator.chains) == 1
    chain = accumulator.chains[0]
    assert len(chain.head_positions) <= window
    total_state = sum(
        len(c.head_positions) + 2 for c in accumulator.chains
    )
    assert total_state <= window * window
    # The resume token (what every watch checkpoint serializes) stays
    # small no matter how long the streak runs.
    assert len(json.dumps(accumulator.to_dict())) < 4096


# ---------------------------------------------------------------------------
# Diff reporter: golden-pinned format.
# ---------------------------------------------------------------------------


class TestDiffReporter:
    def test_diff_golden(self, update_goldens):
        old = one_shot(POOL[:6])
        new = one_shot(POOL[:6] + POOL[6:10])
        check_golden("diff_report.txt", render_diff(old, new), update_goldens)

    def test_equal_studies_diff_empty(self):
        assert render_diff(one_shot(POOL[:6]), one_shot(POOL[:6])) == ""

    def test_none_baseline_lists_everything_as_new(self):
        study = one_shot(POOL[:4])
        diff = render_diff(None, study)
        assert diff.count("+ ") > 20
        assert "->" not in diff

    def test_removed_cells_are_listed(self):
        wide = analyze_corpora(
            {"day": POOL[:4], "extra": POOL[4:8]},
            metrics=METRICS,
            streak_window=WINDOW,
        ).study
        diff = render_diff(wide, one_shot(POOL[:4]))
        assert "  - extra / total = 4" in diff

    def test_registered_format_renders(self):
        study = one_shot(POOL[:4])
        assert render_report(study, "diff") == render_diff(None, study)


# ---------------------------------------------------------------------------
# Schema migration: snapshot schema n-1 checkpoints keep working.
# ---------------------------------------------------------------------------


class TestSchemaMigration:
    def test_schema2_checkpoint_resumes_byte_identically(self, tmp_path):
        """A checkpoint whose embedded studies carry snapshot schema 2
        (full member-position chains) loads into a live session and
        continues to the same bytes as a fresh watch."""
        texts = STREAM[:16]
        source, state = tmp_path / "day.rq", tmp_path / "state"
        write_lines(source, texts[:8])
        WatchSession(
            [str(source)], state, metrics=METRICS, streak_window=64
        ).cycle()

        checkpoint = state / "checkpoint.json"
        data = json.loads(checkpoint.read_text(encoding="utf-8"))
        for document in data["studies"].values():
            assert document["schema"] == 3
            document["schema"] = 2
            for stats in document["datasets"].values():
                streaks = stats.get("streaks")
                if not streaks:
                    continue
                for record in streaks["chains"]:
                    # window 64 > slice size: head == all members, so
                    # the legacy encoding is exactly reconstructible.
                    positions = record["head_positions"]
                    assert len(positions) == record["length"]
                    tail = record["tail"]
                    record.clear()
                    record.update(positions=positions, tail=tail)
        checkpoint.write_text(json.dumps(data), encoding="utf-8")

        write_lines(source, texts[8:])
        WatchSession(
            [str(source)], state, metrics=METRICS, streak_window=64
        ).cycle(drain=True)
        reference = analyze_corpora(
            {"day": texts}, metrics=METRICS, streak_window=64
        ).study
        assert study_bytes(load_study(state / "study.json")) == study_bytes(
            reference
        )

    def test_future_checkpoint_schema_rejected(self, tmp_path):
        source, state = tmp_path / "day.rq", tmp_path / "state"
        write_lines(source, POOL[:3])
        WatchSession(
            [str(source)], state, metrics=METRICS, streak_window=WINDOW
        ).cycle()
        checkpoint = state / "checkpoint.json"
        data = json.loads(checkpoint.read_text(encoding="utf-8"))
        data["schema"] = 99
        checkpoint.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(WatchStateError, match="schema 99"):
            WatchSession(
                [str(source)], state, metrics=METRICS, streak_window=WINDOW
            )


# ---------------------------------------------------------------------------
# Warehouse integration and the CLI verb.
# ---------------------------------------------------------------------------


class TestWarehouseIntegration:
    def test_cycle_deltas_track_the_checkpoint(self, tmp_path):
        from repro.warehouse import StudyWarehouse

        source, state = tmp_path / "day.rq", tmp_path / "state"
        warehouse_path = tmp_path / "w.db"
        for index, stop in enumerate((9, 20, len(STREAM))):
            start = [0, 9, 20][index]
            write_lines(source, STREAM[start:stop])
            WatchSession(
                [str(source)],
                state,
                metrics=METRICS,
                streak_window=WINDOW,
                warehouse_path=warehouse_path,
            ).cycle(drain=stop == len(STREAM))
        checkpointed = load_study(state / "study.json")
        with StudyWarehouse.open(warehouse_path, readonly=True) as warehouse:
            assert warehouse.render("text") == render_report(
                checkpointed, "text"
            )
            log = warehouse.ingest_log()
        assert [entry["source"].split("@")[-1] for entry in log] == [
            "1", "2", "3",
        ]


class TestWatchCli:
    def test_watch_then_idle_then_resume(self, tmp_path, capsys):
        source, state = tmp_path / "day.rq", tmp_path / "state"
        write_lines(source, STREAM[:10])
        base = [
            "watch", str(source), "--state", str(state),
            "--interval", "0", "--metrics", ",".join(METRICS),
            "--streak-window", str(WINDOW),
        ]
        assert main(base + ["--no-drain"]) == 0
        first = capsys.readouterr().out
        assert "cycle 1: 10 new entries" in first
        assert "table1:" in first  # the diff report
        # Nothing new: the cycle is identity and prints no diff.
        assert main(base + ["--no-drain"]) == 0
        idle = capsys.readouterr().out
        assert "cycle 2: 0 new entries" in idle
        assert "table1:" not in idle
        write_lines(source, STREAM[10:])
        assert main(base + ["--cycles", "2"]) == 0
        capsys.readouterr()
        assert study_bytes(load_study(state / "study.json")) == study_bytes(
            one_shot(STREAM)
        )

    def test_watch_rejects_config_change(self, tmp_path, capsys):
        source, state = tmp_path / "day.rq", tmp_path / "state"
        write_lines(source, STREAM[:5])
        base = ["watch", str(source), "--state", str(state), "--interval", "0"]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--metrics", "shallow"]) == 2
        assert "cannot mix" in capsys.readouterr().err

    def test_watch_rejects_empty_metrics(self, tmp_path, capsys):
        assert main(
            ["watch", str(tmp_path / "x.rq"), "--state",
             str(tmp_path / "s"), "--metrics", " , "]
        ) == 2
        assert "selects no passes" in capsys.readouterr().err

    def test_watch_reports_truncation(self, tmp_path, capsys):
        source, state = tmp_path / "day.rq", tmp_path / "state"
        write_lines(source, STREAM[:5])
        base = [
            "watch", str(source), "--state", str(state), "--interval", "0",
        ]
        assert main(base + ["--no-drain"]) == 0
        capsys.readouterr()
        source.write_text("tiny\n", encoding="utf-8")
        assert main(base) == 2
        assert "shrank below" in capsys.readouterr().err
