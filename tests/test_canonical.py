"""Unit tests for canonical graphs and hypergraphs (§5)."""

import pytest

from repro.analysis import (
    canonical_graph,
    canonical_hypergraph,
    has_predicate_variable,
)
from repro.rdf import IRI, Variable
from repro.sparql import parse_query


def pattern_of(text):
    return parse_query(text).pattern


class TestCanonicalGraph:
    def test_chain_example_5_1(self):
        graph = canonical_graph(
            pattern_of("ASK WHERE {?x1 <urn:a> ?x2 . ?x2 <urn:b> ?x3 . ?x3 <urn:c> ?x4}")
        )
        assert graph.node_count() == 4
        assert graph.edge_count() == 3
        degrees = sorted(graph.simple_degree(n) for n in graph.nodes())
        assert degrees == [1, 1, 2, 2]

    def test_direction_ignored(self):
        g1 = canonical_graph(pattern_of("ASK { ?a <urn:p> ?b }"))
        g2 = canonical_graph(pattern_of("ASK { ?b <urn:p> ?a }"))
        assert g1.edge_count() == g2.edge_count() == 1

    def test_self_loop(self):
        graph = canonical_graph(pattern_of("ASK { ?x <urn:p> ?x }"))
        assert graph.has_loops()

    def test_parallel_edges_kept(self):
        graph = canonical_graph(
            pattern_of("ASK { ?a <urn:p> ?b . ?a <urn:q> ?b }")
        )
        assert graph.multiplicity(
            Variable("a"), Variable("b")
        ) == 2

    def test_constants_are_nodes(self):
        graph = canonical_graph(pattern_of("ASK { ?a <urn:p> <urn:const> }"))
        assert graph.has_node(IRI("urn:const"))
        assert graph.edge_count() == 1

    def test_exclude_constants(self):
        graph = canonical_graph(
            pattern_of("ASK { ?a <urn:p> <urn:const> }"),
            include_constants=False,
        )
        assert graph.node_count() == 1
        assert graph.edge_count() == 0

    def test_exclude_constants_keeps_variable_edges(self):
        graph = canonical_graph(
            pattern_of("ASK { ?a <urn:p> ?b . ?a <urn:q> <urn:c> }"),
            include_constants=False,
        )
        assert graph.node_count() == 2
        assert graph.edge_count() == 1

    def test_predicate_variable_raises(self):
        with pytest.raises(ValueError):
            canonical_graph(pattern_of("ASK { ?a ?p ?b }"))

    def test_filter_equality_collapses_nodes(self):
        graph = canonical_graph(
            pattern_of("ASK { ?a <urn:p> ?b . ?c <urn:q> ?d FILTER(?b = ?c) }")
        )
        # ?b and ?c merge: chain a-bc-d.
        assert graph.node_count() == 3
        assert graph.is_connected()

    def test_filter_collapse_can_create_cycle(self):
        graph = canonical_graph(
            pattern_of(
                "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c . ?a <urn:r> ?d "
                "FILTER(?c = ?d) }"
            )
        )
        assert graph.girth() == 3

    def test_collapse_disabled(self):
        graph = canonical_graph(
            pattern_of("ASK { ?a <urn:p> ?b . ?c <urn:q> ?d FILTER(?b = ?c) }"),
            collapse_equalities=False,
        )
        assert graph.node_count() == 4

    def test_optional_triples_included(self):
        graph = canonical_graph(
            pattern_of("SELECT * WHERE { ?a <urn:p> ?b OPTIONAL { ?b <urn:q> ?c } }")
        )
        assert graph.node_count() == 3
        assert graph.edge_count() == 2


class TestPredicateVariableDetection:
    def test_detects(self):
        assert has_predicate_variable(pattern_of("ASK { ?a ?p ?b }"))

    def test_negative(self):
        assert not has_predicate_variable(pattern_of("ASK { ?a <urn:p> ?b }"))

    def test_inside_optional(self):
        assert has_predicate_variable(
            pattern_of("SELECT * WHERE { ?a <urn:p> ?b OPTIONAL { ?a ?p ?c } }")
        )


class TestCanonicalHypergraph:
    def test_example_5_1_hypergraph(self):
        hypergraph = canonical_hypergraph(
            pattern_of("ASK WHERE {?x1 ?x2 ?x3 . ?x3 <urn:a> ?x4 . ?x4 ?x2 ?x5}")
        )
        assert len(hypergraph.edges) == 3
        sizes = sorted(len(e) for e in hypergraph.edges)
        assert sizes == [2, 3, 3]
        assert not hypergraph.is_acyclic()

    def test_constants_not_nodes(self):
        hypergraph = canonical_hypergraph(
            pattern_of("ASK { ?a <urn:p> <urn:const> }")
        )
        assert hypergraph.nodes == {Variable("a")}

    def test_all_constant_triple_dropped(self):
        hypergraph = canonical_hypergraph(
            pattern_of("ASK { <urn:s> <urn:p> <urn:o> }")
        )
        assert hypergraph.edges == []

    def test_acyclic_chain(self):
        hypergraph = canonical_hypergraph(
            pattern_of("ASK { ?a ?p ?b . ?b ?q ?c }")
        )
        assert hypergraph.is_acyclic()

    def test_triangle_not_acyclic(self):
        hypergraph = canonical_hypergraph(
            pattern_of(
                "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c . ?c <urn:r> ?a }"
            )
        )
        assert not hypergraph.is_acyclic()

    def test_distinct_edges_dedup(self):
        hypergraph = canonical_hypergraph(
            pattern_of("ASK { ?a <urn:p> ?b . ?a <urn:q> ?b }")
        )
        assert len(hypergraph.edges) == 2
        assert len(hypergraph.distinct_edges()) == 1

    def test_primal_graph(self):
        hypergraph = canonical_hypergraph(pattern_of("ASK { ?a ?p ?b }"))
        primal = hypergraph.primal_graph()
        assert primal.node_count() == 3
        assert primal.edge_count() == 3  # triangle over {a, p, b}
