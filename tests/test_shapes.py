"""Unit tests for the shape classifier (Table 4)."""

from repro.analysis import canonical_graph, classify_shape
from repro.analysis.graphutil import Multigraph
from repro.analysis.shapes import (
    is_chain,
    is_chain_set,
    is_cycle,
    is_flower,
    is_flower_set,
    is_forest,
    is_petal,
    is_single_edge,
    is_star,
    is_tree,
)
from repro.sparql import parse_query


def graph_of(text):
    return canonical_graph(parse_query(text).pattern)


def build(*edges):
    g = Multigraph()
    for u, v in edges:
        g.add_edge(u, v)
    return g


class TestBasicShapes:
    def test_single_edge(self):
        g = graph_of("ASK { ?a <urn:p> ?b }")
        assert is_single_edge(g) and is_chain(g) and is_tree(g)

    def test_loop_is_not_single_edge(self):
        assert not is_single_edge(graph_of("ASK { ?a <urn:p> ?a }"))

    def test_chain(self):
        g = graph_of("ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }")
        assert is_chain(g) and not is_single_edge(g)

    def test_chain_set(self):
        g = graph_of("ASK { ?a <urn:p> ?b . ?c <urn:q> ?d }")
        assert is_chain_set(g) and not is_chain(g)

    def test_star(self):
        g = graph_of(
            "ASK { ?x <urn:p> ?a . ?x <urn:q> ?b . ?x <urn:r> ?c }"
        )
        assert is_star(g) and is_tree(g) and not is_chain(g)

    def test_two_centers_not_star(self):
        g = build((0, 1), (0, 2), (0, 3), (3, 4), (3, 5), (3, 6))
        assert is_tree(g) and not is_star(g)

    def test_tree(self):
        g = graph_of(
            "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c . ?b <urn:r> ?d . ?d <urn:s> ?e }"
        )
        assert is_tree(g) and is_forest(g)

    def test_forest(self):
        g = graph_of(
            "ASK { ?x <urn:p> ?a . ?x <urn:q> ?b . ?x <urn:r> ?c . ?m <urn:s> ?n }"
        )
        assert is_forest(g) and not is_tree(g)


class TestCycles:
    def test_triangle(self):
        g = graph_of("ASK { ?a <urn:p> ?b . ?b <urn:q> ?c . ?c <urn:r> ?a }")
        assert is_cycle(g) and is_petal(g) and is_flower(g)

    def test_two_node_cycle_from_parallel_edges(self):
        g = graph_of("ASK { ?a <urn:p> ?b . ?b <urn:q> ?a }")
        assert is_cycle(g)

    def test_self_loop_cycle(self):
        g = graph_of("ASK { ?a <urn:p> ?a }")
        assert is_cycle(g)

    def test_chain_not_cycle(self):
        assert not is_cycle(graph_of("ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }"))

    def test_cycle_with_tail_not_cycle(self):
        g = build((0, 1), (1, 2), (2, 0), (2, 3))
        assert not is_cycle(g)
        assert is_flower(g)  # triangle petal + stamen at node 2


class TestPetals:
    def test_theta_graph_is_petal(self):
        # Three disjoint paths between s=0 and t=3.
        g = build((0, 1), (1, 3), (0, 2), (2, 3), (0, 3))
        assert is_petal(g)

    def test_dumbbell_not_petal(self):
        # Two cycles joined by a path: exceptional degrees at two nodes
        # but the lobes are s–s / t–t chains.
        g = build(
            (0, 1), (1, 2), (2, 0),  # triangle at 0
            (0, 3),  # bridge
            (3, 4), (4, 5), (5, 3),  # triangle at 3
        )
        assert not is_petal(g)

    def test_cycle_is_petal(self):
        g = build((0, 1), (1, 2), (2, 3), (3, 0))
        assert is_petal(g)

    def test_petal_with_extra_leaf_not_petal(self):
        g = build((0, 1), (1, 3), (0, 2), (2, 3), (1, 9))
        assert not is_petal(g)


class TestFlowers:
    def test_flower_paper_style(self):
        # Core with two petals and two stamens.
        g = build(
            (0, 1), (1, 2), (2, 0),       # petal 1 (triangle)
            (0, 3), (3, 4), (4, 0),       # petal 2 (triangle)
            (0, 5), (5, 6),               # stamen (chain)
            (0, 7),                       # stamen (single edge)
        )
        assert is_flower(g)
        assert not is_tree(g) and not is_cycle(g)

    def test_tree_is_flower(self):
        g = build((0, 1), (1, 2), (1, 3))
        assert is_flower(g)

    def test_flower_with_stem(self):
        # A tree-not-chain attachment (stem) plus one petal.
        g = build(
            (0, 1), (1, 2), (2, 0),        # petal
            (0, 3), (3, 4), (3, 5),        # stem: tree branching at 3
        )
        assert is_flower(g)

    def test_two_separate_cycles_not_flower(self):
        # Two cycles sharing no node, connected by a path: no single
        # core covers both petals.
        g = build(
            (0, 1), (1, 2), (2, 0),
            (2, 3),
            (3, 4), (4, 5), (5, 3),
        )
        assert not is_flower(g)
        assert not is_flower_set(g)  # it is connected, so same verdict

    def test_flower_set(self):
        g = build(
            (0, 1), (1, 2), (2, 0),  # flower (cycle)
            (10, 11), (11, 12),      # chain (trivially a flower)
        )
        assert is_flower_set(g)
        assert not is_flower(g)  # not connected

    def test_loop_at_core_is_flower(self):
        g = build((0, 0), (0, 1))
        assert is_flower(g)


class TestClassifyProfile:
    def test_cumulative_containments(self):
        """Every Table 4 row must subsume its simpler rows."""
        samples = [
            "ASK { ?a <urn:p> ?b }",
            "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }",
            "ASK { ?x <urn:p> ?a . ?x <urn:q> ?b . ?x <urn:r> ?c }",
            "ASK { ?a <urn:p> ?b . ?c <urn:q> ?d }",
            "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c . ?c <urn:r> ?a }",
        ]
        for text in samples:
            profile = classify_shape(graph_of(text))
            if profile.single_edge:
                assert profile.chain
            if profile.chain:
                assert profile.chain_set and profile.tree
            if profile.star:
                assert profile.tree
            if profile.tree:
                assert profile.forest and profile.flower
            if profile.cycle:
                assert profile.flower
            if profile.flower or profile.forest:
                assert profile.flower_set

    def test_shortest_cycle_reported(self):
        profile = classify_shape(
            graph_of("ASK { ?a <urn:p> ?b . ?b <urn:q> ?c . ?c <urn:r> ?a }")
        )
        assert profile.shortest_cycle == 3

    def test_acyclic_has_no_shortest_cycle(self):
        profile = classify_shape(graph_of("ASK { ?a <urn:p> ?b }"))
        assert profile.shortest_cycle is None

    def test_as_dict_has_all_table4_rows(self):
        profile = classify_shape(graph_of("ASK { ?a <urn:p> ?b }"))
        assert set(profile.as_dict()) == {
            "single edge", "chain", "chain set", "star", "tree",
            "forest", "cycle", "flower", "flower set",
        }
