"""End-to-end integration tests: corpus → pipeline → study → report."""

import pytest

from repro.analysis import find_streaks, streak_length_histogram
from repro.analysis.study import study_corpus
from repro.engine import IndexedEngine, NestedLoopEngine
from repro.logs import build_query_log, encode_access_log_line, iter_queries
from repro.reporting import (
    render_figure1,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.workload import (
    bib_schema,
    generate_corpus,
    generate_day_log,
    generate_graph,
    generate_workload,
)


@pytest.fixture(scope="module")
def mini_corpus_study():
    corpus = generate_corpus(scale=3e-6, seed=42)
    logs = {
        name: build_query_log(name, entries) for name, entries in corpus.items()
    }
    return logs, study_corpus(logs)


class TestFullPipeline:
    def test_table1_counters_consistent(self, mini_corpus_study):
        logs, _ = mini_corpus_study
        for log in logs.values():
            assert log.unique <= log.valid <= log.total

    def test_study_covers_all_datasets(self, mini_corpus_study):
        _, study = mini_corpus_study
        assert len(study.datasets) == 13

    def test_select_dominates(self, mini_corpus_study):
        _, study = mini_corpus_study
        table = dict((k, a) for k, a, _ in study.keyword_table())
        assert table["Select"] > table["Construct"]

    def test_most_queries_are_small(self, mini_corpus_study):
        """Paper: >55% of S/A queries use at most one triple."""
        _, study = mini_corpus_study
        small = sum(
            count
            for stats in study.datasets.values()
            for size, count in stats.triple_hist.items()
            if size <= 1
        )
        assert small / max(study.select_ask_count, 1) > 0.4

    def test_overwhelming_majority_acyclic(self, mini_corpus_study):
        """Paper Table 4: ~99.9% of CQs are forests/flower sets."""
        _, study = mini_corpus_study
        totals = study.shape_totals["CQ"]
        if totals:
            forests = study.shape_counts["CQ"]["forest"]
            assert forests / totals > 0.95
            assert study.shape_counts["CQ"]["flower set"] / totals > 0.98

    def test_treewidth_at_most_two_everywhere(self, mini_corpus_study):
        _, study = mini_corpus_study
        for fragment in ("CQ", "CQF", "CQOF"):
            widths = set(study.treewidth_counts[fragment])
            assert widths <= {0, 1, 2, 3}

    def test_renderers_run(self, mini_corpus_study):
        logs, study = mini_corpus_study
        for renderer, arg in (
            (render_table1, logs),
            (render_table2, study),
            (render_figure1, study),
            (render_table3, study),
            (render_table4, study),
        ):
            assert renderer(arg)

    def test_valid_study_weighting(self, mini_corpus_study):
        logs, unique_study = mini_corpus_study
        valid_study = study_corpus(logs, dedup=False)
        assert valid_study.query_count >= unique_study.query_count


class TestAccessLogRoundTrip:
    def test_corpus_through_access_log_format(self):
        corpus = generate_corpus(scale=1e-6, seed=7, datasets=["SWDF13"])
        raw_lines = [encode_access_log_line(q) for q in corpus["SWDF13"]]
        recovered = list(iter_queries(raw_lines))
        assert recovered == corpus["SWDF13"]


class TestStreakPipeline:
    def test_day_log_streaks(self):
        log = generate_day_log(n_queries=250, session_rate=0.4, seed=3)
        streaks = find_streaks(log, window=30)
        histogram = streak_length_histogram(streaks)
        assert sum(histogram.values()) == len(streaks)
        # Sessions must produce at least one multi-query streak.
        assert any(s.length >= 2 for s in streaks)


class TestFigure3Pipeline:
    def test_chain_cycle_engine_contrast(self):
        """The headline Figure 3 effects, at test scale:
        BG (indexed) beats PG (nested-loop); PG suffers on cycles."""
        schema = bib_schema()
        graph = generate_graph(schema, 300, seed=1)
        chain = [q.text for q in generate_workload(schema, "chain", 3, 3, seed=2)]
        cycle = [q.text for q in generate_workload(schema, "cycle", 3, 3, seed=2)]
        timeout = 5.0
        bg = IndexedEngine(graph, timeout=timeout)
        pg = NestedLoopEngine(graph, timeout=timeout)
        bg_chain = bg.run_workload(chain, "chain")
        pg_chain = pg.run_workload(chain, "chain")
        bg_cycle = bg.run_workload(cycle, "cycle")
        pg_cycle = pg.run_workload(cycle, "cycle")
        # Ordering: indexed engine is faster on both workloads.
        assert bg_chain.average_elapsed < pg_chain.average_elapsed
        assert bg_cycle.average_elapsed < pg_cycle.average_elapsed
        # BG handles these sizes without timing out.
        assert bg_chain.timeout_count == 0
        assert bg_cycle.timeout_count == 0
