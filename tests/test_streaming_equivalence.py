"""Streaming ≡ materialized ≡ serial: the PR 2 ingestion invariant.

The contract under test: feeding the pipeline a one-shot lazy iterator,
chunked with bounded in-flight chunks (any chunk size, any worker
count), produces a ``QueryLog`` and ``CorpusStudy`` *byte-identical* —
down to the rendered report — to materializing the whole stream first,
and to the plain serial pass.  Covers empty streams, all-duplicate
streams, chunk sizes of 1 and beyond the stream length, and gzip input
through the real CLI.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from loggen import write_synthetic_log
from repro.analysis.parallel import (
    build_query_logs_parallel,
    imap_bounded,
    study_corpus_parallel,
)
from repro.analysis.study import study_corpus
from repro.cli import main
from repro.logs import build_query_log, iter_entries
from repro.reporting import render_study

#: Pool of raw entries the random logs draw from: valid queries of
#: assorted features, plus invalid text (Valid < Total, like real logs).
ENTRY_POOL = [
    "ASK { ?s ?p ?o }",
    "SELECT * WHERE { ?a ?b ?c }",
    "SELECT DISTINCT ?x WHERE { ?x <urn:p> ?y FILTER(?y > 3) }",
    "SELECT ?x WHERE { ?x <urn:p>/<urn:q> ?y }",
    "SELECT ?x WHERE { { ?x <urn:p> ?y } UNION { ?x <urn:q> ?y } "
    "OPTIONAL { ?x <urn:r> ?z } }",
    "SELECT ?x WHERE { ?x <urn:p> ?y . ?y <urn:p> ?x } LIMIT 5",
    "BROKEN {",
    "",
]


def assert_logs_identical(a, b):
    assert a.summary_row() == b.summary_row()
    assert [(p.text, p.count) for p in a.parsed] == [
        (p.text, p.count) for p in b.parsed
    ]


def one_shot(entries):
    """A genuinely one-shot iterator (no __len__, no second pass)."""
    return iter(list(entries))


def build_three_ways(entries, chunk_size, workers):
    """(serial, materialized-parallel, streamed) logs for one stream."""
    serial = build_query_log("d", entries)
    materialized = build_query_logs_parallel(
        {"d": list(entries)}, workers=workers, chunk_size=chunk_size
    )["d"]
    streamed = build_query_logs_parallel(
        {"d": one_shot(entries)}, workers=workers, chunk_size=chunk_size
    )["d"]
    return serial, materialized, streamed


class TestStreamedEqualsMaterializedEqualsSerial:
    @settings(max_examples=60, deadline=None)
    @given(
        picks=st.lists(
            st.integers(min_value=0, max_value=len(ENTRY_POOL) - 1), max_size=40
        ),
        chunk_size=st.integers(min_value=1, max_value=50),
    )
    def test_in_process_streaming(self, picks, chunk_size):
        # workers=1: the lazy chunked path, fully in-process, covering
        # chunk sizes from 1 to beyond the stream length.
        entries = [ENTRY_POOL[i] for i in picks]
        serial, materialized, streamed = build_three_ways(entries, chunk_size, 1)
        assert_logs_identical(streamed, serial)
        assert_logs_identical(materialized, serial)
        study_serial = study_corpus({"d": serial})
        study_streamed = study_corpus_parallel(
            {"d": streamed}, workers=1, chunk_size=chunk_size
        )
        assert render_study(study_streamed, {"d": streamed}) == render_study(
            study_serial, {"d": serial}
        )

    @settings(max_examples=10, deadline=None)
    @given(
        picks=st.lists(
            st.integers(min_value=0, max_value=len(ENTRY_POOL) - 1),
            min_size=2,
            max_size=30,
        ),
        chunk_size=st.integers(min_value=1, max_value=8),
        workers=st.sampled_from([2, 3]),
    )
    def test_multiprocess_streaming(self, picks, chunk_size, workers):
        # Random worker counts > 1: results cross process boundaries,
        # merge order must still be stream order.
        entries = [ENTRY_POOL[i] for i in picks]
        serial, materialized, streamed = build_three_ways(entries, chunk_size, workers)
        assert_logs_identical(streamed, serial)
        assert_logs_identical(materialized, serial)

    def test_empty_stream(self):
        serial, materialized, streamed = build_three_ways([], 4, 2)
        assert streamed.summary_row() == ("d", 0, 0, 0)
        assert_logs_identical(streamed, serial)
        assert_logs_identical(materialized, serial)
        study = study_corpus_parallel({"d": streamed}, workers=2, chunk_size=4)
        assert render_study(study, {"d": streamed}) == render_study(
            study_corpus({"d": serial}), {"d": serial}
        )

    def test_all_duplicates_stream(self):
        entries = ["ASK { ?s ?p ?o }"] * 37
        for workers, chunk_size in ((1, 1), (1, 100), (2, 5)):
            serial, materialized, streamed = build_three_ways(
                entries, chunk_size, workers
            )
            assert streamed.summary_row() == ("d", 37, 37, 1)
            assert streamed.parsed[0].count == 37
            assert_logs_identical(streamed, serial)
            assert_logs_identical(materialized, serial)

    def test_chunk_size_beyond_stream_length(self):
        entries = [ENTRY_POOL[0], ENTRY_POOL[1]]
        serial, materialized, streamed = build_three_ways(entries, 10_000, 2)
        assert_logs_identical(streamed, serial)
        assert_logs_identical(materialized, serial)

    def test_multi_dataset_stream_order(self):
        # Several datasets through one streamed pool; per-dataset merge
        # order must stay each dataset's own stream order.
        corpora = {
            "a": [ENTRY_POOL[1], ENTRY_POOL[0], ENTRY_POOL[1]],
            "b": [ENTRY_POOL[0]] * 5 + [ENTRY_POOL[3]],
            "c": [],
        }
        serial_logs = {name: build_query_log(name, e) for name, e in corpora.items()}
        streamed_logs = build_query_logs_parallel(
            {name: one_shot(e) for name, e in corpora.items()},
            workers=2,
            chunk_size=2,
        )
        assert list(streamed_logs) == list(serial_logs)
        for name in corpora:
            assert_logs_identical(streamed_logs[name], serial_logs[name])
        serial_study = study_corpus(serial_logs)
        streamed_study = study_corpus_parallel(streamed_logs, workers=2, chunk_size=2)
        assert render_study(streamed_study, streamed_logs) == render_study(
            serial_study, serial_logs
        )


class TestImapBounded:
    def test_preserves_input_order(self):
        results = list(imap_bounded(_square, range(50), workers=3, max_inflight=4))
        assert results == [n * n for n in range(50)]

    def test_serial_path_is_lazy(self):
        consumed = []

        def source():
            for n in range(100):
                consumed.append(n)
                yield n

        stream = imap_bounded(_square, source(), workers=1)
        assert next(stream) == 0
        # The serial path pulls one payload per result: no read-ahead.
        assert len(consumed) == 1

    def test_bounded_readahead_with_workers(self):
        consumed = []

        def source():
            for n in range(64):
                consumed.append(n)
                yield n

        stream = imap_bounded(_square, source(), workers=2, max_inflight=4)
        assert next(stream) == 0
        high_water = len(consumed)
        # Backpressure: far less than the whole stream is in flight.
        assert high_water <= 8
        assert list(stream) == [n * n for n in range(1, 64)]

    def test_single_payload_skips_pool(self):
        assert list(imap_bounded(_square, [7], workers=4)) == [49]

    def test_propagates_worker_exception(self):
        with pytest.raises(ZeroDivisionError):
            list(imap_bounded(_reciprocal, [1, 0], workers=2))


def _square(n):
    return n * n


def _reciprocal(n):
    return 1 // n


class TestCliStreamGzip:
    def test_gzip_stream_workers4_byte_identical(self, tmp_path, capsys):
        """The acceptance criterion: `repro analyze --stream --workers 4`
        over a gzip log is byte-identical to the serial in-memory run."""
        path = tmp_path / "synthetic.log.gz"
        write_synthetic_log(path, n_entries=400, n_unique=23, seed=1)
        assert main(["analyze", str(path)]) == 0
        serial_out = capsys.readouterr().out
        assert (
            main(
                [
                    "analyze",
                    "--stream",
                    "--workers",
                    "4",
                    "--chunk-size",
                    "17",
                    str(path),
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == serial_out
        assert "synthetic" in serial_out  # .log.gz → dataset name "synthetic"

    def test_directory_stream_matches_per_file_serial(self, tmp_path, capsys):
        log_dir = tmp_path / "endpoint-logs"
        log_dir.mkdir()
        write_synthetic_log(log_dir / "day1.log", n_entries=60, n_unique=9, seed=2)
        write_synthetic_log(log_dir / "day2.log.gz", n_entries=40, n_unique=9, seed=3)
        entries = list(iter_entries(log_dir))
        assert len(entries) == 100
        serial = build_query_log("endpoint-logs", entries)
        streamed = build_query_logs_parallel(
            {"endpoint-logs": iter_entries(log_dir)}, workers=2, chunk_size=13
        )["endpoint-logs"]
        assert_logs_identical(streamed, serial)
        assert main(["analyze", "--stream", str(log_dir)]) == 0
        assert "endpoint-logs" in capsys.readouterr().out
