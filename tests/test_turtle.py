"""Unit tests for the Turtle reader/writer."""

import pytest

from repro.rdf import IRI, BlankNode, Graph, Literal, NamespaceManager, Triple
from repro.rdf import turtle
from repro.rdf.turtle import TurtleError

RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


SAMPLE = """
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ex: <urn:example:> .

ex:alice a foaf:Person ;
    foaf:name "Alice" ;
    foaf:knows ex:bob, ex:carol .

ex:bob foaf:name "Bob"@en ;
    foaf:age 25 .

ex:carol foaf:height 1.75 ;
    foaf:active true .
"""


class TestLoads:
    def test_counts(self):
        # alice: type + name + 2 knows; bob: name + age; carol: 2.
        graph = turtle.loads(SAMPLE)
        assert len(graph) == 8

    def test_a_keyword(self):
        graph = turtle.loads(SAMPLE)
        assert Triple(
            IRI("urn:example:alice"), RDF_TYPE, IRI("http://xmlns.com/foaf/0.1/Person")
        ) in graph

    def test_semicolon_and_comma(self):
        graph = turtle.loads(SAMPLE)
        knows = IRI("http://xmlns.com/foaf/0.1/knows")
        assert graph.count_matches(s=IRI("urn:example:alice"), p=knows) == 2

    def test_language_literal(self):
        graph = turtle.loads(SAMPLE)
        assert graph.count_matches(o=Literal("Bob", language="en")) == 1

    def test_numeric_literals(self):
        graph = turtle.loads(SAMPLE)
        age = Literal("25", datatype="http://www.w3.org/2001/XMLSchema#integer")
        height = Literal("1.75", datatype="http://www.w3.org/2001/XMLSchema#decimal")
        assert graph.count_matches(o=age) == 1
        assert graph.count_matches(o=height) == 1

    def test_boolean_literal(self):
        graph = turtle.loads(SAMPLE)
        true = Literal("true", datatype="http://www.w3.org/2001/XMLSchema#boolean")
        assert graph.count_matches(o=true) == 1

    def test_sparql_style_prefix(self):
        graph = turtle.loads(
            "PREFIX ex: <urn:x:>\nex:a ex:p ex:b ."
        )
        assert len(graph) == 1

    def test_blank_node_property_list(self):
        graph = turtle.loads(
            "@prefix ex: <urn:x:> .\n"
            "ex:a ex:p [ ex:q 1 ; ex:r 2 ] ."
        )
        assert len(graph) == 3

    def test_blank_node_as_subject(self):
        graph = turtle.loads(
            "@prefix ex: <urn:x:> .\n[ ex:p 1 ] ."
        )
        assert len(graph) == 1

    def test_collection(self):
        graph = turtle.loads(
            "@prefix ex: <urn:x:> .\nex:a ex:list (1 2 3) ."
        )
        # 1 attach + 3 first + 3 rest
        assert len(graph) == 7

    def test_labeled_blank_nodes(self):
        graph = turtle.loads("_:x <urn:p> _:y .")
        triple = next(iter(graph))
        assert triple.subject == BlankNode("x")
        assert triple.object == BlankNode("y")

    def test_typed_literal_with_pname(self):
        graph = turtle.loads(
            "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
            '<urn:s> <urn:p> "5"^^xsd:byte .'
        )
        triple = next(iter(graph))
        assert triple.object.datatype.endswith("byte")

    def test_negative_number(self):
        graph = turtle.loads("<urn:s> <urn:p> -42 .")
        assert next(iter(graph)).object.lexical == "-42"

    def test_base_resolution(self):
        graph = turtle.loads("@base <http://ex.org/data/> .\n<s> <p> <o> .")
        triple = next(iter(graph))
        assert triple.subject == IRI("http://ex.org/data/s")


class TestErrors:
    def test_undeclared_prefix(self):
        with pytest.raises(TurtleError):
            turtle.loads("ex:a ex:p ex:b .")

    def test_missing_dot(self):
        with pytest.raises(TurtleError):
            turtle.loads("<urn:a> <urn:p> <urn:b>")

    def test_literal_subject(self):
        with pytest.raises(TurtleError):
            turtle.loads('"lit" <urn:p> <urn:o> .')

    def test_error_carries_position(self):
        with pytest.raises(TurtleError, match="line"):
            turtle.loads("<urn:a> <urn:p> ; .")


class TestDumps:
    def test_round_trip_plain(self):
        graph = turtle.loads(SAMPLE)
        again = turtle.loads(turtle.dumps(graph))
        assert set(again) == set(graph)

    def test_round_trip_with_prefixes(self):
        graph = turtle.loads(SAMPLE)
        manager = NamespaceManager(
            {"foaf": "http://xmlns.com/foaf/0.1/", "ex": "urn:example:"}
        )
        text = turtle.dumps(graph, namespaces=manager)
        assert "@prefix foaf:" in text
        assert "foaf:name" in text
        assert set(turtle.loads(text)) == set(graph)

    def test_groups_by_subject(self):
        g = Graph()
        s = IRI("urn:s")
        g.add(Triple(s, IRI("urn:p"), Literal("a")))
        g.add(Triple(s, IRI("urn:q"), Literal("b")))
        text = turtle.dumps(g)
        assert text.count("<urn:s>") == 1
        assert ";" in text

    def test_rdf_type_abbreviated(self):
        g = Graph()
        g.add(Triple(IRI("urn:s"), RDF_TYPE, IRI("urn:C")))
        assert " a " in turtle.dumps(g)

    def test_empty_graph(self):
        assert turtle.dumps(Graph()) == ""
