"""Unit tests for the lazy log-entry sources (repro.logs.sources)."""

import gzip

import pytest

from repro.logs import (
    dataset_name,
    detect_format,
    encode_access_log_line,
    iter_entries,
    iter_file_entries,
    open_text,
    read_entries,
    source_paths,
)
from repro.logs.sources import DETECT_LINES, iter_text_lines


class TestOpenText:
    def test_plain_text(self, tmp_path):
        path = tmp_path / "plain.log"
        path.write_text("hello\nworld\n")
        with open_text(path) as handle:
            assert handle.read() == "hello\nworld\n"

    def test_gzip_by_magic_bytes_despite_plain_name(self, tmp_path):
        # A gzipped stream misnamed ".log" must still decompress.
        path = tmp_path / "misnamed.log"
        path.write_bytes(gzip.compress("hidden\n".encode()))
        with open_text(path) as handle:
            assert handle.read() == "hidden\n"

    def test_invalid_utf8_is_replaced_not_fatal(self, tmp_path):
        path = tmp_path / "junk.log"
        path.write_bytes(b"ok\n\xff\xfe junk\n")
        assert "�" in "".join(iter_text_lines(path))


class TestDetectFormat:
    def test_access_log_signature_wins(self):
        lines = [encode_access_log_line("ASK { ?s ?p ?o }"), "", "stray"]
        assert detect_format(lines) == "access-log"

    def test_blank_line_means_blocks(self):
        assert detect_format(["SELECT ?x", "WHERE { }", "", "ASK { }"]) == "blocks"

    def test_default_is_lines(self):
        assert detect_format(["ASK { ?s ?p ?o }", "ASK { ?a ?b ?c }"]) == "lines"

    def test_empty_sample_is_lines(self):
        assert detect_format([]) == "lines"

    def test_access_probe_limited_to_head(self):
        # The HTTP marker only counts within the first ten lines.
        lines = ["plain"] * 10 + ['x "GET /sparql?query=q HTTP/1.1" 200 1']
        assert detect_format(lines) == "lines"


class TestIterFileEntries:
    def test_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "q.rq"
        path.write_text("ASK { ?s ?p ?o }\n")
        with pytest.raises(ValueError):
            iter_file_entries(path, format="parquet")

    def test_explicit_format_skips_detection(self, tmp_path):
        path = tmp_path / "q.rq"
        path.write_text("a\n\nb\n")
        assert list(iter_file_entries(path, format="lines")) == ["a", "b"]
        assert list(iter_file_entries(path, format="blocks")) == ["a", "b"]

    def test_matches_materialized_reader(self, tmp_path):
        for name, body in (
            ("lines.rq", "SELECT ?x WHERE {\\n ?x <urn:p> ?y }\nASK { ?s ?p ?o }\n"),
            ("blocks.rq", "SELECT ?x\nWHERE { ?x ?p ?y }\n\nASK { ?s ?p ?o }\n"),
            (
                "access.log",
                encode_access_log_line("ASK { ?s ?p ?o }")
                + "\n"
                + "not a log line\n",
            ),
        ):
            path = tmp_path / name
            path.write_text(body)
            assert list(iter_file_entries(path)) == read_entries(path)

    def test_lazy_consumption(self, tmp_path):
        # Pulling one entry must not require materializing the file.
        path = tmp_path / "big.rq"
        path.write_text("\n".join(f"ASK {{ ?s <urn:p{i}> ?o }}" for i in range(5000)))
        stream = iter_file_entries(path)
        assert next(stream) == "ASK { ?s <urn:p0> ?o }"
        stream.close()

    def test_detection_window_is_bounded(self, tmp_path):
        # A blank line beyond the peek window no longer flips the whole
        # file to blocks format: detection is streaming, by design.
        path = tmp_path / "long.rq"
        lines = [f"ASK {{ ?s <urn:p{i}> ?o }}" for i in range(DETECT_LINES)]
        path.write_text("\n".join(lines) + "\n\n")
        assert len(list(iter_file_entries(path))) == DETECT_LINES


class TestDirectorySources:
    def test_source_paths_sorted_and_filtered(self, tmp_path):
        log_dir = tmp_path / "logs"
        log_dir.mkdir()
        (log_dir / "b.log").write_text("ASK { ?s ?p ?o }\n")
        (log_dir / "a.log").write_text("ASK { ?a ?p ?o }\n")
        (log_dir / ".hidden").write_text("junk\n")
        (log_dir / "sub").mkdir()
        assert [p.name for p in source_paths(log_dir)] == ["a.log", "b.log"]

    def test_file_source_is_itself(self, tmp_path):
        path = tmp_path / "one.log"
        path.write_text("ASK { ?s ?p ?o }\n")
        assert source_paths(path) == [path]

    def test_directory_concatenates_in_name_order(self, tmp_path):
        log_dir = tmp_path / "logs"
        log_dir.mkdir()
        (log_dir / "2.rq").write_text("ASK { ?b ?p ?o }\n")
        (log_dir / "1.rq").write_text("ASK { ?a ?p ?o }\n")
        assert read_entries(log_dir) == ["ASK { ?a ?p ?o }", "ASK { ?b ?p ?o }"]

    def test_mixed_formats_per_file(self, tmp_path):
        log_dir = tmp_path / "logs"
        log_dir.mkdir()
        (log_dir / "a.log").write_text(
            encode_access_log_line("ASK { ?s ?p ?o }") + "\n"
        )
        with gzip.open(log_dir / "b.rq.gz", "wt", encoding="utf-8") as handle:
            handle.write("SELECT * WHERE { ?a ?b ?c }\n")
        assert list(iter_entries(log_dir)) == [
            "ASK { ?s ?p ?o }",
            "SELECT * WHERE { ?a ?b ?c }",
        ]

    def test_empty_file_yields_nothing(self, tmp_path):
        path = tmp_path / "empty.log"
        path.write_text("")
        assert list(iter_entries(path)) == []


class TestDatasetName:
    def test_strips_gz_and_extension(self):
        assert dataset_name("logs/dbpedia.log.gz") == "dbpedia"
        assert dataset_name("dbpedia.log") == "dbpedia"
        assert dataset_name("corpus-out") == "corpus-out"
        assert dataset_name("queries.rq") == "queries"

    def test_directory_name_keeps_dots(self, tmp_path):
        # A directory is its own name: "logs.2015/" must not be
        # truncated to "logs" (which would collide with "logs.2016/").
        dotted = tmp_path / "logs.2015"
        dotted.mkdir()
        assert dataset_name(dotted) == "logs.2015"
