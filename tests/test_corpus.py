"""Unit tests for the calibrated synthetic corpus generator."""

import pytest

from repro.exceptions import SparqlSyntaxError
from repro.sparql import parse_query
from repro.workload import (
    DATASET_ORDER,
    DATASET_PROFILES,
    generate_corpus,
    generate_dataset,
    generate_day_log,
)


class TestProfiles:
    def test_thirteen_datasets(self):
        assert len(DATASET_PROFILES) == 13
        assert list(DATASET_ORDER)[0] == "DBpedia9/12"
        assert "WikiData17" in DATASET_PROFILES

    def test_table1_totals(self):
        # The paper's printed grand total (180,653,910) differs from
        # the sum of its own rows by a few hundred queries; we encode
        # the row values verbatim, so compare with tolerance.
        total = sum(p.total for p in DATASET_PROFILES.values())
        assert abs(total - 180_653_910) < 1000

    def test_valid_unique_monotonicity(self):
        for profile in DATASET_PROFILES.values():
            assert profile.unique <= profile.valid <= profile.total

    def test_query_type_mix_sums_to_one(self):
        for profile in DATASET_PROFILES.values():
            assert sum(profile.query_type_mix) == pytest.approx(1.0, abs=0.01)


class TestGenerateDataset:
    def test_counts_scale(self):
        profile = DATASET_PROFILES["DBpedia13"]
        entries = generate_dataset(profile, scale=1e-5, seed=0)
        expected_total = round(profile.total * 1e-5)
        assert abs(len(entries) - expected_total) <= 2

    def test_deterministic(self):
        profile = DATASET_PROFILES["SWDF13"]
        a = generate_dataset(profile, scale=1e-5, seed=3)
        b = generate_dataset(profile, scale=1e-5, seed=3)
        assert a == b

    def test_seed_changes_output(self):
        profile = DATASET_PROFILES["SWDF13"]
        a = generate_dataset(profile, scale=1e-5, seed=3)
        b = generate_dataset(profile, scale=1e-5, seed=4)
        assert a != b

    def test_contains_invalid_entries(self):
        profile = DATASET_PROFILES["LGD13"]  # valid/total ≈ 0.82
        entries = generate_dataset(profile, scale=2e-4, seed=1)
        invalid = 0
        for entry in entries:
            try:
                parse_query(entry)
            except SparqlSyntaxError:
                invalid += 1
        assert invalid > 0
        # Roughly the Table 1 invalid share (±60% tolerance at this scale).
        expected = len(entries) * (1 - profile.valid / profile.total)
        assert invalid == pytest.approx(expected, rel=0.6)

    def test_contains_duplicates(self):
        profile = DATASET_PROFILES["BioMed13"]  # heavy duplication
        entries = generate_dataset(profile, scale=2e-3, seed=1)
        assert len(set(entries)) < len(entries)

    def test_most_queries_parse(self):
        profile = DATASET_PROFILES["DBpedia15"]
        entries = generate_dataset(profile, scale=2e-5, seed=2)
        parsed = 0
        for entry in entries:
            try:
                parse_query(entry)
                parsed += 1
            except SparqlSyntaxError:
                pass
        assert parsed / len(entries) > 0.9

    def test_describe_heavy_dataset(self):
        profile = DATASET_PROFILES["BioMed13"]
        entries = generate_dataset(profile, scale=5e-3, seed=5)
        describes = sum(1 for e in entries if e.lstrip().startswith("DESCRIBE"))
        assert describes / len(entries) > 0.5

    def test_construct_heavy_dataset(self):
        profile = DATASET_PROFILES["LGD13"]
        entries = generate_dataset(profile, scale=3e-4, seed=5)
        constructs = sum(1 for e in entries if e.lstrip().startswith("CONSTRUCT"))
        assert constructs / len(entries) > 0.4


class TestGenerateCorpus:
    def test_all_datasets(self):
        corpus = generate_corpus(scale=1e-6, seed=0)
        assert set(corpus) == set(DATASET_ORDER)

    def test_subset(self):
        corpus = generate_corpus(scale=1e-6, seed=0, datasets=["SWDF13"])
        assert list(corpus) == ["SWDF13"]

    def test_unknown_dataset_rejected(self):
        from repro.exceptions import WorkloadError

        with pytest.raises(WorkloadError):
            generate_corpus(datasets=["Nope"])


class TestDayLog:
    def test_size(self):
        log = generate_day_log(n_queries=300, seed=1)
        assert len(log) == 300

    def test_contains_sessions(self):
        """Sessions produce runs of similar queries."""
        from repro.analysis import find_streaks, streak_length_histogram

        log = generate_day_log(n_queries=400, session_rate=0.5, seed=2)
        streaks = find_streaks(log, window=30)
        histogram = streak_length_histogram(streaks)
        multi = sum(v for k, v in histogram.items() if k != "1-10")
        assert multi > 0 or any(s.length > 1 for s in streaks)

    def test_deterministic(self):
        assert generate_day_log(n_queries=100, seed=9) == generate_day_log(
            n_queries=100, seed=9
        )

    def test_custom_profile(self):
        profile = DATASET_PROFILES["SWDF13"]
        log = generate_day_log(n_queries=50, seed=0, profile=profile)
        assert len(log) == 50
