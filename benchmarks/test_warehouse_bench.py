"""Study warehouse: ingest throughput and query latency, machine-readable.

Builds one per-dataset snapshot per corpus dataset, ingests them all
into a fresh warehouse, then times queries twice — cold (fresh handle,
first render parses the stored study document) and warm (same handle,
per-generation study cache hot) — plus a round of indexed queries that
never touch the study document at all.  Writes ``BENCH_warehouse.json``
(path overridable via ``REPRO_BENCH_WAREHOUSE_JSON``) with the ingest
rate, both report latencies, the indexed-query latency, and the
byte-identity verdict against a direct ``render_report`` over the
one-shot study.  The CI bench-smoke job uploads the file and asserts
the verdict, so a warehouse that drifts from the reporter registry
fails the build instead of quietly serving different bytes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from _bench_utils import banner
from repro.analysis.study import study_corpus
from repro.reporting import render_report
from repro.warehouse import StudyWarehouse


def test_warehouse_artifact(corpus_logs, corpus_study, tmp_path):
    snapshots = [
        study_corpus({name: log}) for name, log in corpus_logs.items()
    ]
    total_queries = sum(study.query_count for study in snapshots)
    path = tmp_path / "bench.warehouse"

    start = time.perf_counter()
    with StudyWarehouse.open(path) as warehouse:
        for name, study in zip(corpus_logs, snapshots):
            assert warehouse.ingest(study, source=name) == "merged"
    ingest_seconds = time.perf_counter() - start

    # Cold: a fresh read-only handle; the first render parses the
    # stored snapshot document.
    start = time.perf_counter()
    with StudyWarehouse.open(path, readonly=True) as warehouse:
        cold_report = warehouse.render("text")
        cold_seconds = time.perf_counter() - start

        # Warm: same handle, study cache hot for this generation.
        start = time.perf_counter()
        warm_report = warehouse.render("text")
        warm_seconds = time.perf_counter() - start

        # Indexed queries answer from derived tables, not the document.
        start = time.perf_counter()
        dataset_total, _ = warehouse.datasets()
        cell_total, _ = warehouse.table_cells(1)
        search_total, _ = warehouse.search("SELECT")
        indexed_seconds = time.perf_counter() - start

    direct = render_report(corpus_study, "text")
    identical = cold_report == direct and warm_report == direct

    payload = {
        "warehouse": {
            "snapshots": len(snapshots),
            "datasets": dataset_total,
            "queries": total_queries,
            "size_bytes": path.stat().st_size,
            "ingest": {
                "total_seconds": round(ingest_seconds, 6),
                "queries_per_second": round(total_queries / ingest_seconds, 1),
            },
            "query": {
                "cold_report_seconds": round(cold_seconds, 6),
                "warm_report_seconds": round(warm_seconds, 6),
                "indexed_seconds": round(indexed_seconds, 6),
                "table1_cells": cell_total,
                "search_hits": search_total,
            },
            "identical_reports": identical,
        }
    }
    out_path = Path(
        os.environ.get("REPRO_BENCH_WAREHOUSE_JSON", "BENCH_warehouse.json")
    )
    # Merge key-wise, same contract as the other bench artifacts.
    if out_path.exists():
        merged = json.loads(out_path.read_text(encoding="utf-8"))
        merged.update(payload)
        payload = merged
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    banner("Study warehouse: ingest throughput and query latency")
    print(
        f"  ingest: {len(snapshots)} snapshots / {total_queries:,} queries "
        f"in {ingest_seconds:8.4f}s "
        f"({total_queries / ingest_seconds:,.0f} q/s)"
    )
    print(
        f"  report: cold {cold_seconds:8.4f}s, warm {warm_seconds:8.4f}s; "
        f"indexed queries {indexed_seconds:8.4f}s"
    )
    print(f"  identical to direct render_report: {identical}")

    assert identical, "warehouse-served report must match render_report"
    assert dataset_total == len(corpus_logs)
