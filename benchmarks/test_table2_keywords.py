"""Table 2 — keyword counts over the Unique corpus.

What should hold (paper's relative percentages, Unique corpus):
Select ≈ 88%, Ask ≈ 5%, Describe ≈ 4.5%, Construct ≈ 2.5%; Filter ≈
40%, And ≈ 28%, Union ≈ 19%, Opt ≈ 16%; aggregation operators < 1%.
"""

from __future__ import annotations

from _bench_utils import banner

from repro.analysis.study import study_corpus
from repro.reporting import render_table2

#: (keyword, paper relative %) from Table 2.
PAPER_TABLE2 = {
    "Select": 87.97, "Ask": 4.97, "Describe": 4.49, "Construct": 2.47,
    "Distinct": 21.72, "Limit": 17.00, "Offset": 6.15, "Order By": 2.06,
    "Filter": 40.15, "And": 28.25, "Union": 18.63, "Opt": 16.21,
    "Graph": 2.71, "Not Exists": 1.65, "Minus": 1.36, "Exists": 0.01,
    "Count": 0.57, "Max": 0.01, "Min": 0.01, "Avg": 0.00, "Sum": 0.00,
    "Group By": 0.30, "Having": 0.02,
}


def test_table2_keywords(benchmark, corpus_logs):
    study = benchmark.pedantic(
        lambda: study_corpus(corpus_logs, dedup=True), rounds=1, iterations=1
    )

    banner("Table 2: keyword counts (measured vs paper)")
    print(render_table2(study))
    print()
    measured = {k: pct for k, _, pct in study.keyword_table()}
    print(f"{'Element':<12} {'paper':>8} {'measured':>10}")
    for keyword, paper_pct in PAPER_TABLE2.items():
        print(f"{keyword:<12} {paper_pct:>7.2f}% {measured.get(keyword, 0):>9.2f}%")

    # Shape checks.
    assert measured["Select"] > 70
    assert measured["Select"] > measured["Ask"] > measured["Construct"]
    assert measured["Filter"] > measured["Union"]
    assert measured["Filter"] > measured["Opt"]
    for rare in ("Max", "Min", "Avg", "Sum", "Having"):
        assert measured.get(rare, 0) < 2.0
