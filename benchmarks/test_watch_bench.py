"""Watch mode: incremental cycle cost vs full re-analysis.

Builds a deterministic single-day log, checkpoints most of it once,
then times a series of small watch cycles — each with a *fresh*
``WatchSession`` so resume (cursor verification, checkpoint load) and
the atomic checkpoint write are inside the measured window.  A final
one-shot ``analyze_corpora`` over the complete log is timed for
comparison.  Writes ``BENCH_watch.json`` (path overridable via
``REPRO_BENCH_WATCH_JSON``) with both timings, the speedup, and the
byte-identity verdict between the checkpointed study and the one-shot
study (invariant 12).  The CI bench-smoke job uploads the file and
asserts the speedup floor, so a watch cycle that silently degrades to
re-analysing the whole log fails the build.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from _bench_utils import banner
from repro.api import WatchSession, analyze_corpora, load_study
from repro.workload import generate_day_log

ENTRIES = int(os.environ.get("REPRO_BENCH_WATCH_ENTRIES", "2400"))
CYCLES = 8
SLICE = 24
SPEEDUP_FLOOR = 3.0


def _append(path: Path, texts) -> None:
    with path.open("a", encoding="utf-8") as handle:
        for text in texts:
            handle.write(text.replace("\n", "\\n") + "\n")


def _study_bytes(study) -> str:
    return json.dumps(study.to_dict(), sort_keys=True)


def test_watch_artifact(tmp_path):
    texts = generate_day_log(n_queries=ENTRIES, seed=7)
    base = len(texts) - CYCLES * SLICE
    assert base > 0, "bench log too small for the cycle schedule"
    log = tmp_path / "day.log"
    state = tmp_path / "watch-state"

    # Seed the checkpoint with the bulk of the log; this first fold is
    # the expensive one and stays outside the measured cycles.
    _append(log, texts[:base])
    WatchSession([str(log)], state).cycle()

    cycle_seconds = []
    for index in range(CYCLES):
        start_entry = base + index * SLICE
        _append(log, texts[start_entry : start_entry + SLICE])
        start = time.perf_counter()
        outcome = WatchSession([str(log)], state).cycle(
            drain=index == CYCLES - 1
        )
        cycle_seconds.append(time.perf_counter() - start)
        assert outcome.total_new == SLICE

    start = time.perf_counter()
    reference = analyze_corpora({"day": texts}).study
    one_shot_seconds = time.perf_counter() - start

    checkpointed = load_study(state / "study.json")
    identical = _study_bytes(checkpointed) == _study_bytes(reference)
    mean_cycle = sum(cycle_seconds) / len(cycle_seconds)
    speedup = one_shot_seconds / mean_cycle

    payload = {
        "watch": {
            "entries": len(texts),
            "cycles": CYCLES,
            "entries_per_cycle": SLICE,
            "one_shot_seconds": round(one_shot_seconds, 6),
            "mean_cycle_seconds": round(mean_cycle, 6),
            "max_cycle_seconds": round(max(cycle_seconds), 6),
            "speedup": round(speedup, 2),
            "identical_study": identical,
        }
    }
    out_path = Path(os.environ.get("REPRO_BENCH_WATCH_JSON", "BENCH_watch.json"))
    # Merge key-wise, same contract as the other bench artifacts.
    if out_path.exists():
        merged = json.loads(out_path.read_text(encoding="utf-8"))
        merged.update(payload)
        payload = merged
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    banner("Watch mode: incremental cycle vs full re-analysis")
    print(
        f"  one-shot: {len(texts):,} entries in {one_shot_seconds:8.4f}s; "
        f"cycle: {SLICE} entries in {mean_cycle:8.4f}s mean "
        f"(max {max(cycle_seconds):8.4f}s)"
    )
    print(f"  speedup: {speedup:,.1f}x; identical study: {identical}")

    assert identical, "checkpointed study must match one-shot analysis"
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental cycle only {speedup:.1f}x faster than re-analysis "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
