"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  The
corpus is generated once per session at ``REPRO_BENCH_SCALE`` times the
paper's Table 1 counts (default 1:50,000 — ~3,600 queries), processed
through the same clean/parse/dedup pipeline the paper describes, and
shared by all corpus-driven benches.

Benches print the measured rows next to the paper's published values so
EXPERIMENTS.md can be filled in mechanically.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest

from _bench_utils import BENCH_SCALE, BENCH_SEED
from repro.analysis.study import study_corpus
from repro.logs import build_query_log
from repro.workload import bib_schema, generate_corpus, generate_graph


@pytest.fixture(scope="session")
def corpus_entries():
    return generate_corpus(scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def corpus_logs(corpus_entries):
    return {
        name: build_query_log(name, entries)
        for name, entries in corpus_entries.items()
    }


@pytest.fixture(scope="session")
def corpus_study(corpus_logs):
    return study_corpus(corpus_logs, dedup=True)


@pytest.fixture(scope="session")
def valid_corpus_study(corpus_logs):
    """The appendix corpus: duplicates retained (Tables 7–9)."""
    return study_corpus(corpus_logs, dedup=False)


@pytest.fixture(scope="session")
def figure3_graph():
    """The gMark Bib graph for the engine experiment (paper: 100k
    nodes; bench default keeps the nested-loop engine's timeouts in
    check while preserving the orderings)."""
    schema = bib_schema()
    n_nodes = int(os.environ.get("REPRO_BENCH_GRAPH_NODES", "1500"))
    return schema, generate_graph(schema, n_nodes, seed=BENCH_SEED)
