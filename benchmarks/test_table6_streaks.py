"""Table 6 — streak lengths in single-day logs.

The paper scans three single-day DBpedia logs (2014/2015/2016) with
window 30 and normalized Levenshtein ≤ 0.25.  What should hold: the
length histogram is heavily skewed to 1–10, decays monotonically-ish
through the buckets, and long streaks (> 100; paper's max was 169)
exist but are rare.
"""

from __future__ import annotations

import os

from _bench_utils import banner

from repro.analysis import find_streaks, streak_length_histogram
from repro.reporting import render_table6
from repro.workload import DATASET_PROFILES, generate_day_log

PAPER_TABLE6 = {
    "1-10": (42_272, 167_292, 199_375),
    "11-20": (3_732, 24_001, 37_402),
    "21-30": (2_425, 4_813, 17_749),
    "31-40": (884, 667, 5_849),
    ">100": (5, 0, 24),
}

DAY_LOG_SIZE = int(os.environ.get("REPRO_BENCH_DAYLOG", "800"))


def test_table6_streaks(benchmark):
    day_logs = {
        "DBP'14": generate_day_log(
            DAY_LOG_SIZE, session_rate=0.20, seed=14,
            profile=DATASET_PROFILES["DBpedia14"],
        ),
        "DBP'15": generate_day_log(
            DAY_LOG_SIZE, session_rate=0.30, seed=15,
            profile=DATASET_PROFILES["DBpedia15"],
        ),
        "DBP'16": generate_day_log(
            DAY_LOG_SIZE, session_rate=0.40, seed=16,
            profile=DATASET_PROFILES["DBpedia16"],
        ),
    }

    def detect_all():
        return {
            name: streak_length_histogram(find_streaks(log, window=30))
            for name, log in day_logs.items()
        }

    histograms = benchmark.pedantic(detect_all, rounds=1, iterations=1)

    banner(f"Table 6: streak lengths ({DAY_LOG_SIZE}-query day logs)")
    print(render_table6(histograms))
    print()
    print("Paper (day logs of 273MiB/803MiB/1004MiB):")
    for bucket, values in PAPER_TABLE6.items():
        print(f"  {bucket:<6} {values}")

    # Shape checks.
    for name, histogram in histograms.items():
        assert histogram["1-10"] == max(histogram.values()), name
        assert histogram["1-10"] > histogram["11-20"], name
    # Multi-query streaks exist (the refinement sessions).
    assert any(
        sum(v for k, v in histogram.items() if k != "1-10") > 0
        for histogram in histograms.values()
    )
