"""Table 6 — streak lengths in single-day logs.

The paper scans three single-day DBpedia logs (2014/2015/2016) with
window 30 and normalized Levenshtein ≤ 0.25.  What should hold: the
length histogram is heavily skewed to 1–10, decays monotonically-ish
through the buckets, and long streaks (> 100; paper's max was 169)
exist but are rare.

Also records a serial-vs-sharded wall-time comparison of the
mergeable :class:`~repro.analysis.streaks.StreakAccumulator` path into
``BENCH_passes.json`` (merged key-wise with the analyzer-pass
timings), so the cost of the paper's "extremely resource-consuming"
analysis is tracked per commit.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from _bench_utils import banner

from repro.analysis import find_streaks, streak_length_histogram
from repro.analysis.context import AnalysisOptions
from repro.analysis.parallel import (
    TransportStats,
    WorkerPool,
    build_query_log_parallel,
)
from repro.analysis.streaks import SIMILARITY_COUNTERS, StreakAccumulator
from repro.reporting import render_table6
from repro.workload import DATASET_PROFILES, generate_day_log

PAPER_TABLE6 = {
    "1-10": (42_272, 167_292, 199_375),
    "11-20": (3_732, 24_001, 37_402),
    "21-30": (2_425, 4_813, 17_749),
    "31-40": (884, 667, 5_849),
    ">100": (5, 0, 24),
}

DAY_LOG_SIZE = int(os.environ.get("REPRO_BENCH_DAYLOG", "800"))


def test_table6_streaks(benchmark):
    day_logs = {
        "DBP'14": generate_day_log(
            DAY_LOG_SIZE, session_rate=0.20, seed=14,
            profile=DATASET_PROFILES["DBpedia14"],
        ),
        "DBP'15": generate_day_log(
            DAY_LOG_SIZE, session_rate=0.30, seed=15,
            profile=DATASET_PROFILES["DBpedia15"],
        ),
        "DBP'16": generate_day_log(
            DAY_LOG_SIZE, session_rate=0.40, seed=16,
            profile=DATASET_PROFILES["DBpedia16"],
        ),
    }

    def detect_all():
        return {
            name: streak_length_histogram(find_streaks(log, window=30))
            for name, log in day_logs.items()
        }

    histograms = benchmark.pedantic(detect_all, rounds=1, iterations=1)

    banner(f"Table 6: streak lengths ({DAY_LOG_SIZE}-query day logs)")
    print(render_table6(histograms))
    print()
    print("Paper (day logs of 273MiB/803MiB/1004MiB):")
    for bucket, values in PAPER_TABLE6.items():
        print(f"  {bucket:<6} {values}")

    # Shape checks.
    for name, histogram in histograms.items():
        assert histogram["1-10"] == max(histogram.values()), name
        assert histogram["1-10"] > histogram["11-20"], name
    # Multi-query streaks exist (the refinement sessions).
    assert any(
        sum(v for k, v in histogram.items() if k != "1-10") > 0
        for histogram in histograms.values()
    )


def _detect_chunk(texts):
    accumulator = StreakAccumulator(window=30)
    for text in texts:
        accumulator.push(text)
    return accumulator


def test_table6_sharded_vs_serial_walltime():
    """Serial scan vs the sharded runtime's scan of one day log.

    The sharded side is the real product path — lean ingestion through
    :func:`build_query_log_parallel` on a persistent
    :class:`WorkerPool` with the adaptive chunk schedule — so the
    recorded trajectory tracks what users actually run.  Both sides are
    timed best-of-``REPRO_BENCH_ROUNDS`` after a warm-up scan.  Asserts
    exactness (the sharded accumulator is the serial one) and merges
    the wall times plus the transport accounting into
    BENCH_passes.json for the CI artifact.  On a single-core runner the
    adaptive schedule collapses to a single in-process chunk, so the
    recorded speedup sits at parity rather than below it.
    """
    workers = min(4, os.cpu_count() or 1)
    rounds = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))
    log = generate_day_log(
        DAY_LOG_SIZE * 2, session_rate=0.30, seed=6,
        profile=DATASET_PROFILES["DBpedia15"],
    )

    SIMILARITY_COUNTERS.reset()
    serial = _detect_chunk(log)  # warm-up; also the counter snapshot scan
    # Kernel instrumentation for the serial scan: how much work each
    # prefilter stage absorbed before the DP ran (per-process counters,
    # so snapshot them before the sharded runs add their own).
    serial_counters = SIMILARITY_COUNTERS.to_dict()
    dp_skip_rate = SIMILARITY_COUNTERS.dp_skip_rate
    serial_seconds = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        _detect_chunk(log)
        serial_seconds = min(serial_seconds, time.perf_counter() - started)

    options = AnalysisOptions(metrics=("streaks",), lean_ingestion=True)
    with WorkerPool(workers) as pool:

        def run_sharded():
            stats = TransportStats()
            qlog = build_query_log_parallel(
                "day", log, options=options, pool=pool, transport=stats,
            )
            return qlog.sequences["streaks"], stats

        sharded, transport = run_sharded()  # warm-up (pool start-up)
        sharded_seconds = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            sharded, transport = run_sharded()
            sharded_seconds = min(sharded_seconds, time.perf_counter() - started)

    assert sharded == serial  # byte-identical, not just same histogram
    assert sharded.length_histogram() == streak_length_histogram(
        find_streaks(log, window=30)
    )

    out_path = Path(os.environ.get("REPRO_BENCH_PASSES_JSON", "BENCH_passes.json"))
    payload = {}
    if out_path.exists():
        payload = json.loads(out_path.read_text(encoding="utf-8"))
    payload["streaks"] = {
        "queries": len(log),
        "window": 30,
        "workers": workers,
        "chunk_size": "adaptive",
        "serial_seconds": round(serial_seconds, 6),
        "sharded_seconds": round(sharded_seconds, 6),
        "serial_vs_sharded_speedup": round(
            serial_seconds / sharded_seconds if sharded_seconds > 0 else 0.0, 3
        ),
        "chunks_shipped": transport.chunks_shipped,
        "shipped_bytes": transport.shipped_bytes,
        "merge_seconds": round(transport.merge_seconds, 6),
        "streak_count": serial.streak_count,
        "longest": serial.longest,
        "similarity_counters": serial_counters,
        "dp_skip_rate": round(dp_skip_rate, 4),
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    banner("Table 6: serial vs sharded streak scan")
    print(
        f"  {len(log)} queries, window 30: serial {serial_seconds:.3f}s, "
        f"sharded ({workers} workers) {sharded_seconds:.3f}s "
        f"(best of {rounds})"
    )
    print(
        f"  transport: {transport.chunks_shipped} chunks, "
        f"{transport.shipped_bytes} bytes shipped, "
        f"merge {transport.merge_seconds:.4f}s"
    )
    print(
        f"  kernel: {serial_counters['comparisons']} comparisons, "
        f"{serial_counters['dp_runs']} DP runs "
        f"({dp_skip_rate:.1%} settled by prefilters/memo)"
    )
    print(f"  wrote {out_path}")
