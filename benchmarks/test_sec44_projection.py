"""§4.4 — subqueries and projection.

What should hold: subqueries are rare corpus-wide (paper: 0.54%) but an
order of magnitude more common in WikiData17 (paper: 9.74%); projection
lies in a [definite, definite+indeterminate] band around 15% (paper:
14.98%–16.28%), with Ask queries contributing only when they bind
variables.
"""

from __future__ import annotations

from _bench_utils import banner

from repro.reporting import render_projection


def test_projection_and_subqueries(benchmark, corpus_study):
    bounds = benchmark.pedantic(
        corpus_study.projection_bounds, rounds=1, iterations=1
    )

    banner("Sec 4.4: projection and subqueries (measured vs paper)")
    print(render_projection(corpus_study))
    print()
    low, high = bounds
    subquery_pct = 100.0 * corpus_study.subquery_count / max(
        corpus_study.query_count, 1
    )
    print(f"paper: subqueries 0.54%       measured: {subquery_pct:.2f}%")
    print(f"paper: projection 14.98%-16.28%  measured: {low:.2f}%-{high:.2f}%")

    # Shape checks.
    assert 0 <= low <= high <= 100
    assert subquery_pct < 10  # rare corpus-wide
    assert 3 < low < 40  # projection is a substantial minority
    assert high - low < 15  # the Bind-indeterminate band is narrow
