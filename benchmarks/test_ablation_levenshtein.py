"""Ablation — banded vs full Levenshtein (§8).

Streak discovery was "extremely resource-consuming" for the paper; the
band optimization is what makes it affordable here.  This bench
measures the banded O(k·n) similarity test against the full O(n²) DP
over the same query pairs and verifies identical decisions.
"""

from __future__ import annotations

import time

from _bench_utils import banner

from repro.analysis import levenshtein
from repro.analysis.streaks import strip_prefixes
from repro.workload import generate_day_log


def test_ablation_levenshtein_band(benchmark):
    log = [strip_prefixes(q) for q in generate_day_log(400, seed=4)]
    pairs = list(zip(log, log[1:]))

    def banded_pass():
        decisions = []
        for a, b in pairs:
            budget = int(max(len(a), len(b)) * 0.25)
            decisions.append(levenshtein(a, b, max_distance=budget) is not None)
        return decisions

    banded_decisions = benchmark.pedantic(banded_pass, rounds=1, iterations=1)

    started = time.monotonic()
    full_decisions = []
    for a, b in pairs:
        budget = int(max(len(a), len(b)) * 0.25)
        full_decisions.append(levenshtein(a, b) <= budget)
    full_elapsed = time.monotonic() - started

    started = time.monotonic()
    banded_pass()
    banded_elapsed = time.monotonic() - started

    banner("Ablation: banded vs full Levenshtein")
    print(f"full DP:   {full_elapsed * 1e3:9.1f} ms over {len(pairs)} pairs")
    print(f"banded:    {banded_elapsed * 1e3:9.1f} ms")
    if banded_elapsed > 0:
        print(f"speedup:   {full_elapsed / banded_elapsed:9.2f}x")

    # The optimization must not change any similarity decision.
    assert banded_decisions == full_decisions
    # And it should actually be faster on dissimilar pairs.
    assert banded_elapsed <= full_elapsed * 1.2
