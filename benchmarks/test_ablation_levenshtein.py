"""Ablation — the streak similarity kernel, layer by layer (§8).

Streak discovery was "extremely resource-consuming" for the paper; the
similarity kernel is what makes it affordable here, and this bench
measures each of its layers against the one below, always verifying
identical decisions:

* **distance engines** — full O(n²) DP vs banded O(k·n) DP vs the
  Myers bit-parallel algorithm the kernel actually uses;
* **prefilters on/off** — the full filter chain
  (:func:`repro.analysis.streaks.stripped_similar`) vs the
  pre-prefilter kernel kept as the correctness oracle;
* **lean ingestion on/off** — a sequence-only ``streaks`` study with
  and without the full clean → parse → dedup pipeline.

Every comparison appends a row to ``BENCH_ablation.json``
(``REPRO_BENCH_ABLATION_JSON`` overrides the path) so CI can upload
the ablation table as an artifact; see docs/PERFORMANCE.md for how to
read it.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from _bench_utils import banner

from repro.analysis import levenshtein
from repro.analysis.streaks import (
    SIMILARITY_COUNTERS,
    _levenshtein_banded,
    _levenshtein_full,
    _similar_reference,
    strip_prefixes,
    stripped_similar,
)
from repro.api import analyze_corpora
from repro.workload import generate_day_log

#: Lookbehind used to build realistic comparison pairs: each query
#: against its predecessors, like the streak scan itself.
WINDOW = 30


def _record_ablation(row: dict) -> None:
    """Append *row* to the ablation table (keyed by its ``name``)."""
    out_path = Path(
        os.environ.get("REPRO_BENCH_ABLATION_JSON", "BENCH_ablation.json")
    )
    payload = {}
    if out_path.exists():
        payload = json.loads(out_path.read_text(encoding="utf-8"))
    payload[row["name"]] = row
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def _speedup(baseline: float, optimized: float) -> float:
    return baseline / optimized if optimized > 0 else float("inf")


def test_ablation_levenshtein_engines(benchmark):
    """Full DP vs banded DP vs bit-parallel on consecutive-pair budgets."""
    log = [strip_prefixes(q) for q in generate_day_log(400, seed=4)]
    pairs = list(zip(log, log[1:]))

    def bitparallel_pass():
        decisions = []
        for a, b in pairs:
            budget = int(max(len(a), len(b)) * 0.25)
            decisions.append(levenshtein(a, b, max_distance=budget) is not None)
        return decisions

    def banded_pass():
        decisions = []
        for a, b in pairs:
            budget = int(max(len(a), len(b)) * 0.25)
            short, long = (a, b) if len(a) <= len(b) else (b, a)
            if len(long) - len(short) > budget:
                decisions.append(False)
            elif short == long:
                decisions.append(True)
            else:
                decisions.append(
                    _levenshtein_banded(short, long, budget) is not None
                )
        return decisions

    bit_decisions = benchmark.pedantic(bitparallel_pass, rounds=1, iterations=1)

    started = time.monotonic()
    full_decisions = []
    for a, b in pairs:
        budget = int(max(len(a), len(b)) * 0.25)
        distance = 0 if a == b else _levenshtein_full(a, b)
        full_decisions.append(distance <= budget)
    full_elapsed = time.monotonic() - started

    started = time.monotonic()
    banded_decisions = banded_pass()
    banded_elapsed = time.monotonic() - started

    started = time.monotonic()
    bitparallel_pass()
    bit_elapsed = time.monotonic() - started

    banner("Ablation: Levenshtein engines (full vs banded vs bit-parallel)")
    print(f"full DP:      {full_elapsed * 1e3:9.1f} ms over {len(pairs)} pairs")
    print(f"banded DP:    {banded_elapsed * 1e3:9.1f} ms")
    print(f"bit-parallel: {bit_elapsed * 1e3:9.1f} ms")
    if bit_elapsed > 0:
        print(f"speedup over full: {_speedup(full_elapsed, bit_elapsed):9.2f}x")

    # The optimizations must not change any similarity decision.
    assert banded_decisions == full_decisions
    assert bit_decisions == full_decisions
    # And the shipped engine should actually be faster.
    assert bit_elapsed <= full_elapsed * 1.2
    _record_ablation(
        {
            "name": "levenshtein_engines",
            "pairs": len(pairs),
            "full_seconds": round(full_elapsed, 6),
            "banded_seconds": round(banded_elapsed, 6),
            "bitparallel_seconds": round(bit_elapsed, 6),
            "speedup_vs_full": round(_speedup(full_elapsed, bit_elapsed), 2),
        }
    )


def test_ablation_prefilters():
    """Filter chain on vs off over window-shaped pairs, same decisions."""
    log = [strip_prefixes(q) for q in generate_day_log(400, seed=4)]
    pairs = [
        (log[i], log[j])
        for i in range(len(log))
        for j in range(max(0, i - WINDOW), i)
    ]

    started = time.monotonic()
    reference = [_similar_reference(a, b) for a, b in pairs]
    off_elapsed = time.monotonic() - started

    SIMILARITY_COUNTERS.reset()
    started = time.monotonic()
    filtered = [stripped_similar(a, b) for a, b in pairs]
    on_elapsed = time.monotonic() - started
    counters = SIMILARITY_COUNTERS.to_dict()
    skip_rate = SIMILARITY_COUNTERS.dp_skip_rate

    banner("Ablation: similarity prefilters on vs off")
    print(f"prefilters off: {off_elapsed * 1e3:9.1f} ms over {len(pairs)} pairs")
    print(f"prefilters on:  {on_elapsed * 1e3:9.1f} ms")
    print(f"speedup:        {_speedup(off_elapsed, on_elapsed):9.2f}x")
    print(
        f"DP skip rate:   {skip_rate:9.1%}  "
        f"(length {counters['length_rejects']}, bag {counters['bag_rejects']}, "
        f"equal {counters['equal_accepts']}, trim {counters['trim_accepts']}, "
        f"DP {counters['dp_runs']})"
    )

    # The provable-lower-bound contract: not one decision may differ.
    assert filtered == reference
    _record_ablation(
        {
            "name": "prefilters",
            "pairs": len(pairs),
            "off_seconds": round(off_elapsed, 6),
            "on_seconds": round(on_elapsed, 6),
            "speedup": round(_speedup(off_elapsed, on_elapsed), 2),
            "dp_skip_rate": round(skip_rate, 4),
            "counters": counters,
        }
    )


def test_ablation_lean_ingestion():
    """Lean vs full ingestion of a sequence-only streaks study."""
    log = generate_day_log(600, session_rate=0.3, seed=8)

    started = time.monotonic()
    full = analyze_corpora({"day": log}, metrics=("streaks",), lean=False)
    full_elapsed = time.monotonic() - started

    started = time.monotonic()
    lean = analyze_corpora({"day": log}, metrics=("streaks",), lean=True)
    lean_elapsed = time.monotonic() - started

    banner("Ablation: lean vs full ingestion (sequence-only study)")
    print(f"full ingestion: {full_elapsed * 1e3:9.1f} ms over {len(log)} queries")
    print(f"lean ingestion: {lean_elapsed * 1e3:9.1f} ms")
    print(f"speedup:        {_speedup(full_elapsed, lean_elapsed):9.2f}x")

    # Identical streak state — only Table 1's Valid/Unique differ
    # (0 in lean runs: the parse stage never ran).
    assert (
        lean.study.datasets["day"].streaks == full.study.datasets["day"].streaks
    )
    assert lean.study.datasets["day"].total == full.study.datasets["day"].total
    assert lean.study.datasets["day"].valid == 0
    _record_ablation(
        {
            "name": "lean_ingestion",
            "queries": len(log),
            "full_seconds": round(full_elapsed, 6),
            "lean_seconds": round(lean_elapsed, 6),
            "speedup": round(_speedup(full_elapsed, lean_elapsed), 2),
        }
    )
