"""Persistent structure store: cold vs warm wall time, machine-readable.

Runs the profiled study twice against the same on-disk store — first
cold (empty store, every structural signature computed and flushed),
then warm (a fresh process-level cache, signatures served from disk) —
and writes ``BENCH_structure_store.json`` (path overridable via
``REPRO_BENCH_STRUCTURE_JSON``) with both runs' structure-pass and
total wall times, the warm run's store hit count, and a byte-identity
verdict for the rendered reports.  The CI bench-smoke job uploads the
file and asserts the warm run actually served entries, so a regression
that silently stops reading the store fails the build instead of just
making it slower.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from _bench_utils import banner
from repro.analysis.context import AnalysisOptions
from repro.analysis.structure_store import StructureStore
from repro.analysis.study import study_corpus
from repro.reporting import render_report


def timed_run(corpus_logs, store_path):
    options = AnalysisOptions(
        profile=True, structure_cache_path=str(store_path)
    )
    start = time.perf_counter()
    study = study_corpus(corpus_logs, options=options)
    elapsed = time.perf_counter() - start
    return study, elapsed


def test_structure_store_artifact(corpus_logs, tmp_path):
    store_path = tmp_path / "bench-structure.sqlite"

    cold_study, cold_seconds = timed_run(corpus_logs, store_path)
    warm_study, warm_seconds = timed_run(corpus_logs, store_path)

    cold = cold_study.pass_profile
    warm = warm_study.pass_profile
    identical = render_report(cold_study, "text") == render_report(
        warm_study, "text"
    )

    store = StructureStore.open(store_path, readonly=True)
    assert store is not None
    stats = store.stats()
    store.close()

    payload = {
        "structure_store": {
            "queries": warm.queries,
            "entries": stats["entries"],
            "cold": {
                "total_seconds": round(cold_seconds, 6),
                "structure_pass_seconds": round(
                    cold.seconds.get("structure", 0.0), 6
                ),
                "store_hits": cold.store_hits,
            },
            "warm": {
                "total_seconds": round(warm_seconds, 6),
                "structure_pass_seconds": round(
                    warm.seconds.get("structure", 0.0), 6
                ),
                "store_hits": warm.store_hits,
            },
            "identical_reports": identical,
        }
    }
    out_path = Path(
        os.environ.get(
            "REPRO_BENCH_STRUCTURE_JSON", "BENCH_structure_store.json"
        )
    )
    # Merge key-wise, same contract as the other bench artifacts.
    if out_path.exists():
        merged = json.loads(out_path.read_text(encoding="utf-8"))
        merged.update(payload)
        payload = merged
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    banner("Persistent structure store: cold vs warm")
    print(
        f"  cold: total {cold_seconds:8.4f}s, "
        f"structure pass {cold.seconds.get('structure', 0.0):8.4f}s, "
        f"store hits {cold.store_hits}"
    )
    print(
        f"  warm: total {warm_seconds:8.4f}s, "
        f"structure pass {warm.seconds.get('structure', 0.0):8.4f}s, "
        f"store hits {warm.store_hits:,}"
    )
    print(
        f"  store: {stats['entries']:,} entries, "
        f"{stats['size_bytes']:,} bytes on disk"
    )
    print(f"  reports byte-identical: {identical}")
    print(f"  wrote {out_path}")

    # Transparency and warmth are the acceptance gate, not wall time:
    # timings land in the artifact for trend tracking, but tiny corpora
    # make absolute speedup assertions flaky.
    assert identical
    assert cold.store_hits == 0  # store started empty
    assert warm.store_hits > 0  # warm run actually read the store
    assert stats["entries"] > 0
    assert stats["stale"] == 0  # single code version in play
