"""Figure 1 — number-of-triples histograms per dataset.

What should hold: queries with 0–2 triples dominate almost every
dataset; BioP13/BioP14 are almost exclusively 1-triple; BritM14 and
WikiData17 are the outliers with large queries; the corpus-wide share
of Select/Ask queries with ≤ 1 triple exceeds 50% (paper: 56.45%).
"""

from __future__ import annotations

from _bench_utils import banner

from repro.reporting import render_figure1

#: Figure 1 bottom rows: (S/A %, Avg#T) per dataset.
PAPER_FIGURE1 = {
    "DBpedia9/12": (99.15, 2.38),
    "DBpedia13": (91.88, 3.98),
    "DBpedia14": (95.38, 2.09),
    "DBpedia15": (93.05, 2.94),
    "DBpedia16": (63.99, 3.78),
    "LGD13": (29.01, 3.19),
    "LGD14": (97.47, 2.65),
    "BioP13": (100.0, 1.16),
    "BioP14": (99.69, 1.42),
    "BioMed13": (12.87, 2.44),
    "SWDF13": (96.14, 1.51),
    "BritM14": (98.64, 5.47),
    "WikiData17": (99.68, 3.94),
}


def test_figure1_triple_histograms(benchmark, corpus_study):
    def per_dataset_histograms():
        return {
            name: stats.triple_hist_percentages()
            for name, stats in corpus_study.datasets.items()
        }

    histograms = benchmark.pedantic(per_dataset_histograms, rounds=1, iterations=1)

    banner("Figure 1: triple-count distribution (measured vs paper)")
    print(render_figure1(corpus_study))
    print()
    print(f"{'Dataset':<12} {'paper S/A':>10} {'meas S/A':>10} "
          f"{'paper Avg#T':>12} {'meas Avg#T':>11}")
    for name, (sa, avg) in PAPER_FIGURE1.items():
        stats = corpus_study.datasets[name]
        print(
            f"{name:<12} {sa:>9.2f}% {100 * stats.select_ask_share:>9.2f}% "
            f"{avg:>12.2f} {stats.average_triples:>11.2f}"
        )

    # Shape checks.
    # Corpus-wide: most S/A queries have at most one triple.
    small = sum(
        count
        for stats in corpus_study.datasets.values()
        for size, count in stats.triple_hist.items()
        if size <= 1
    )
    assert small / max(corpus_study.select_ask_count, 1) > 0.45
    # BioP logs are tiny-query logs; BritM14 queries are large.
    biop = corpus_study.datasets["BioP13"]
    if biop.select_ask >= 10:
        assert biop.triple_hist_percentages()["1"] > 60
    britm = corpus_study.datasets["BritM14"]
    if britm.queries >= 5:
        assert britm.average_triples > 3
    # Describe-heavy BioMed13 has a low S/A share.
    biomed = corpus_study.datasets["BioMed13"]
    if biomed.queries >= 10:
        assert biomed.select_ask_share < 0.5
    assert histograms  # benchmark payload materialized
