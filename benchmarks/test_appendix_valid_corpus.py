"""Appendix (Tables 7–9, Figures 8–10) — the Valid corpus analyses.

The paper repeats every analysis on the duplicate-retaining Valid
corpus.  What should hold: the same qualitative structure as the
main-body tables, with duplication shifting weight toward the hot
queries; the paper notes that larger/more complex queries occur
relatively *more often* with duplicates than without.

This bench doubles as the dedup ablation called out in DESIGN.md.
"""

from __future__ import annotations

from _bench_utils import banner

from repro.analysis.study import study_corpus
from repro.reporting import render_table2, render_table3


def test_appendix_valid_corpus(benchmark, corpus_logs, corpus_study):
    valid_study = benchmark.pedantic(
        lambda: study_corpus(corpus_logs, dedup=False), rounds=1, iterations=1
    )

    banner("Appendix: Valid corpus (Tables 7-8 analogues)")
    print(render_table2(valid_study, title="Table 7"))
    print()
    print(render_table3(valid_study, title="Table 8"))

    # The valid corpus is strictly larger than the unique one.
    assert valid_study.query_count > corpus_study.query_count

    # Every keyword count is at least its unique-corpus counterpart
    # (duplication can only add occurrences).
    for keyword, count in corpus_study.keyword_counts.items():
        assert valid_study.keyword_counts[keyword] >= count, keyword

    # Shape analysis still reaches ~100% flower-set coverage.
    totals = valid_study.shape_totals["CQ"]
    if totals >= 50:
        coverage = valid_study.shape_counts["CQ"]["flower set"] / totals
        assert coverage > 0.97

    # Operator-set distribution keeps its ordering: CPF dominates.
    table = {label: pct for label, _, pct in valid_study.operator_table()}
    assert table["CPF subtotal"] > 40
