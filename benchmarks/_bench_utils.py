"""Shared constants and helpers for the benchmark harness."""

from __future__ import annotations

import os

#: Scale factor applied to Table 1's per-dataset counts.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2e-5"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))


def banner(title: str) -> None:
    print()
    print("#" * 72)
    print(f"# {title}")
    print("#" * 72)
