"""Scaling benchmark: does parallelism actually pay, and at what scale?

Runs the real product path — ``AnalysisRequest``/``AnalysisSession``
with the ``streaks`` sequence metric (lean ingestion, the §8 workload
that motivated the parallel runtime) — over a small and a large
synthetic day log at workers ∈ {1, 2, 4}, each worker count on one
persistent session pool, timed best-of-``REPRO_BENCH_ROUNDS``.

Records wall time, speedup vs serial, shipped chunks/bytes and parent
merge time per run into ``BENCH_scaling.json`` (uploaded as a CI
artifact; the CI gate requires workers=4 ≥ 1.5× serial on the large
corpus when the runner actually has ≥ 4 CPUs), plus a before/after
measurement of the compact shard transport: pickled bytes of one
ingestion chunk's result as the full ``LogShard`` object graph (ASTs,
dedup map — what a naive driver ships for a streaks run) vs the
slimmed pre-reduced payload the runtime actually returns (total
counter + streak accumulator + counter deltas).

Every sharded report is asserted byte-identical to the serial one —
the speedup is only interesting if the answer is exactly the same.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from _bench_utils import banner

from repro.analysis.context import AnalysisOptions
from repro.analysis.parallel import _pool_parse_chunk
from repro.api import AnalysisRequest, AnalysisSession
from repro.workload import DATASET_PROFILES, generate_day_log

SMALL_SIZE = int(os.environ.get("REPRO_BENCH_SCALING_SMALL", "600"))
LARGE_SIZE = int(os.environ.get("REPRO_BENCH_SCALING_LARGE", "4800"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))
WORKER_COUNTS = (1, 2, 4)


def _corpus(size: int, seed: int) -> list:
    return generate_day_log(
        size, session_rate=0.30, seed=seed,
        profile=DATASET_PROFILES["DBpedia15"],
    )


def _timed_runs(session: AnalysisSession, request: AnalysisRequest):
    """Warm up once (pool start-up), then best-of-ROUNDS on one session."""
    result = session.run(request)
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        result = session.run(request)
        best = min(best, time.perf_counter() - started)
    return result, best


def _transport_before_after() -> dict:
    """Pickled bytes of one streaks-run ingestion chunk, before vs after.

    Before: full ingestion (parse + dedup + AST retention) — the shard
    a naive driver ships home.  After: the slimmed lean payload the
    runtime returns for sequence-only runs (total counter + streak
    accumulator + counter deltas, no ASTs).  Both measured through the
    actual pool worker function, so the numbers are the real transport.
    """
    texts = _corpus(400, seed=7)
    full = AnalysisOptions(metrics=("streaks",), lean_ingestion=False)
    lean = AnalysisOptions(metrics=("streaks",), lean_ingestion=True)
    full_bytes = len(_pool_parse_chunk(("day", texts, None, full, None)))
    lean_bytes = len(_pool_parse_chunk(("day", texts, None, lean, None)))
    return {
        "chunk_queries": len(texts),
        "full_shard_bytes": full_bytes,
        "lean_shard_bytes": lean_bytes,
        "lean_vs_full_ratio": round(lean_bytes / full_bytes, 4),
    }


def test_scaling_workers_times_corpus():
    cpus = os.cpu_count() or 1
    corpora = {
        "small": _corpus(SMALL_SIZE, seed=21),
        "large": _corpus(LARGE_SIZE, seed=22),
    }

    runs = []
    identical = True
    for corpus_name, log in corpora.items():
        serial_seconds = None
        serial_report = None
        for workers in WORKER_COUNTS:
            request = AnalysisRequest(
                corpora={"day": log},
                metrics=("streaks",),
                workers=workers,
                profile=True,
            )
            with AnalysisSession() as session:
                result, seconds = _timed_runs(session, request)
            report = result.render("text")
            if workers == 1:
                serial_seconds, serial_report = seconds, report
            assert report == serial_report  # byte-identical to serial
            identical = identical and report == serial_report
            profile = result.profile
            runs.append({
                "corpus": corpus_name,
                "queries": len(log),
                "workers": workers,
                "seconds": round(seconds, 6),
                "speedup": round(serial_seconds / seconds if seconds else 0.0, 3),
                "chunks_shipped": profile.chunks_shipped,
                "shipped_bytes": profile.shipped_bytes,
                "merge_seconds": round(profile.merge_seconds, 6),
            })

    transport = _transport_before_after()
    payload = {
        "scaling": {
            "cpus": cpus,
            "rounds": ROUNDS,
            "sizes": {"small": SMALL_SIZE, "large": LARGE_SIZE},
            "identical_reports": identical,
            "runs": runs,
            "transport": transport,
        }
    }
    out_path = Path(os.environ.get("REPRO_BENCH_SCALING_JSON", "BENCH_scaling.json"))
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    banner(f"Scaling: workers x corpus on {cpus} CPUs (best of {ROUNDS})")
    for run in runs:
        print(
            f"  {run['corpus']:<6} workers={run['workers']}: "
            f"{run['seconds']:.3f}s ({run['speedup']:.2f}x), "
            f"{run['chunks_shipped']} chunks / {run['shipped_bytes']:,} B shipped, "
            f"merge {run['merge_seconds']:.4f}s"
        )
    print(
        f"  transport: {transport['full_shard_bytes']:,} B full shard -> "
        f"{transport['lean_shard_bytes']:,} B lean shard "
        f"({transport['lean_vs_full_ratio']:.3f}x) "
        f"for a {transport['chunk_queries']}-query chunk"
    )
    print(f"  wrote {out_path}")
