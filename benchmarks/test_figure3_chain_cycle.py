"""Figure 3 — chain vs cycle workloads on two engines.

The paper ran 100-query gMark workloads of chain and cycle queries
(lengths 3–8) on Blazegraph (BG) and PostgreSQL (PG) with a 300 s
per-query timeout.  Findings to reproduce in *shape* (absolute numbers
are testbed-specific):

1. BG outperforms PG on every workload;
2. both engines are slower on cycles than on chains of the same length;
3. PG times out on a large fraction of cycle queries (paper bottom
   table: 18–43% per workload) while BG does not.
"""

from __future__ import annotations

import os

from _bench_utils import banner

from repro.engine import IndexedEngine, NestedLoopEngine
from repro.reporting import render_figure3
from repro.workload import generate_workload

#: Paper's PG cycle timeout rates per workload (bottom of Figure 3).
PAPER_PG_CYCLE_TIMEOUTS = {3: 0.18, 4: 0.34, 5: 0.43, 6: 0.39, 7: 0.43, 8: 0.30}

LENGTHS = tuple(
    int(x) for x in os.environ.get("REPRO_BENCH_LENGTHS", "3,4,5,6").split(",")
)
QUERIES_PER_WORKLOAD = int(os.environ.get("REPRO_BENCH_WL_SIZE", "4"))
TIMEOUT = float(os.environ.get("REPRO_BENCH_TIMEOUT", "2.5"))


def test_figure3_chain_vs_cycle(benchmark, figure3_graph):
    schema, graph = figure3_graph
    engines = {
        "BG": IndexedEngine(graph, timeout=TIMEOUT),
        "PG": NestedLoopEngine(graph, timeout=TIMEOUT),
    }

    def run_all():
        results = []
        for length in LENGTHS:
            for shape in ("chain", "cycle"):
                workload = generate_workload(
                    schema, shape, length, QUERIES_PER_WORKLOAD, seed=length
                )
                texts = [q.text for q in workload]
                for engine in engines.values():
                    results.append(
                        engine.run_workload(texts, label=f"{shape}-W{length}")
                    )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    banner(
        f"Figure 3: chain/cycle x BG/PG (graph={len(graph)} triples, "
        f"timeout={TIMEOUT}s, {QUERIES_PER_WORKLOAD} queries/workload)"
    )
    print(render_figure3(results))
    print()
    print("Paper PG cycle timeout rates:", PAPER_PG_CYCLE_TIMEOUTS)

    by_key = {(r.engine, r.workload): r for r in results}

    # Finding 1: BG's overall performance is superior to PG's (the
    # paper's phrasing).  Assert it in aggregate per shape and on the
    # majority of individual workloads — a single adversarial query can
    # fool the greedy join order, just as real optimizers mispick.
    wins = 0
    cells = 0
    for shape in ("chain", "cycle"):
        bg_total = sum(
            by_key[("BG", f"{shape}-W{length}")].average_elapsed
            for length in LENGTHS
        )
        pg_total = sum(
            by_key[("PG", f"{shape}-W{length}")].average_elapsed
            for length in LENGTHS
        )
        assert bg_total <= pg_total, shape
        for length in LENGTHS:
            label = f"{shape}-W{length}"
            cells += 1
            if (
                by_key[("BG", label)].average_elapsed
                <= by_key[("PG", label)].average_elapsed
            ):
                wins += 1
    assert wins >= cells * 0.7

    # Finding 2: BG never times out at these sizes.
    assert all(
        by_key[("BG", f"{shape}-W{length}")].timeout_count == 0
        for length in LENGTHS
        for shape in ("chain", "cycle")
    )

    # Finding 3: PG suffers on cycles — timeouts appear as length grows.
    pg_cycle_timeouts = sum(
        by_key[("PG", f"cycle-W{length}")].timeout_count for length in LENGTHS
    )
    assert pg_cycle_timeouts > 0

    # Finding 4: cycles cost at least as much as chains on PG overall.
    pg_chain_total = sum(
        by_key[("PG", f"chain-W{length}")].average_elapsed for length in LENGTHS
    )
    pg_cycle_total = sum(
        by_key[("PG", f"cycle-W{length}")].average_elapsed for length in LENGTHS
    )
    assert pg_cycle_total >= pg_chain_total * 0.8
