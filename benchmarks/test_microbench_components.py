"""Component micro-benchmarks (multi-round timings).

Unlike the table/figure benches (one-shot pedantic runs that print
paper comparisons), these measure the throughput of the hot components
with pytest-benchmark's normal calibration: parser, BGP joins, shape
classification, treewidth, and the banded Levenshtein.  They catch
performance regressions in the substrate the reproduction rests on.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    canonical_graph,
    classify_fragments,
    classify_shape,
    levenshtein,
    treewidth,
)
from repro.engine import IndexedEngine
from repro.sparql import parse_query, serialize_query
from repro.workload import bib_schema, generate_graph

WIKIDATA_QUERY = """
PREFIX wdt: <http://www.wikidata.org/prop/direct/>
PREFIX wd: <http://www.wikidata.org/entity/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?label ?coord ?subj
WHERE
{ ?subj wdt:P31/wdt:P279* wd:Q839954 .
  ?subj wdt:P625 ?coord .
  ?subj rdfs:label ?label filter(lang(?label)="en")
}
ORDER BY ?label
LIMIT 100
"""

CHAIN_8 = (
    "ASK { " + " . ".join(
        f"?x{i} <urn:p{i}> ?x{i + 1}" for i in range(8)
    ) + " }"
)


def test_parse_throughput(benchmark):
    query = benchmark(parse_query, WIKIDATA_QUERY)
    assert query.projection is not None


def test_serialize_round_trip_throughput(benchmark):
    parsed = parse_query(WIKIDATA_QUERY)

    def round_trip():
        return parse_query(serialize_query(parsed))

    again = benchmark(round_trip)
    assert again.pattern == parsed.pattern


def test_shape_classification_throughput(benchmark):
    pattern = parse_query(CHAIN_8).pattern

    def classify():
        return classify_shape(canonical_graph(pattern))

    profile = benchmark(classify)
    assert profile.chain


def test_fragment_classification_throughput(benchmark):
    query = parse_query(
        "SELECT * WHERE { ?a <urn:p> ?b . ?b <urn:q> ?c "
        "OPTIONAL { ?c <urn:r> ?d } FILTER(lang(?b) = \"en\") }"
    )
    profile = benchmark(classify_fragments, query)
    assert profile.is_aof


def test_treewidth_cycle_throughput(benchmark):
    pattern = parse_query(
        "ASK { " + " . ".join(
            f"?x{i} <urn:p> ?x{(i + 1) % 12}" for i in range(12)
        ) + " }"
    ).pattern
    graph = canonical_graph(pattern)
    result = benchmark(treewidth, graph)
    assert result.width == 2


@pytest.fixture(scope="module")
def engine():
    schema = bib_schema()
    return IndexedEngine(generate_graph(schema, 400, seed=3), timeout=30.0)


def test_join_throughput(benchmark, engine):
    ns = bib_schema().namespace
    query = (
        f"SELECT ?r WHERE {{ ?p <{ns}authoredBy> ?r . "
        f"?p <{ns}publishedIn> ?j . ?r <{ns}friendOf> ?f }} LIMIT 50"
    )
    rows = benchmark(engine.evaluate, query)
    assert isinstance(rows, list)


def test_levenshtein_banded_throughput(benchmark):
    a = "SELECT ?x WHERE { ?x <urn:p> 'value-one' . ?x <urn:q> ?y }" * 4
    b = a.replace("value-one", "value-two")
    distance = benchmark(levenshtein, a, b, 60)
    assert distance is not None
