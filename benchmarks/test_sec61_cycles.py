"""§6.1 — shortest-cycle lengths and the constants rerun.

What should hold: among cyclic CQ-like queries, girth 3 dominates, with
counts decreasing as the girth grows (paper: 39,471 girth-3 vs 6,561
girth-4 vs 5,733 girth-5, max 14); and the constants analysis finds
that most single-edge CQs use constants (paper: 78.70%).
"""

from __future__ import annotations

from _bench_utils import banner


def test_shortest_cycles_and_constants(benchmark, corpus_study):
    girth_hist = benchmark.pedantic(
        lambda: dict(corpus_study.girth_hist), rounds=1, iterations=1
    )

    banner("Sec 6.1: shortest cycles + constants (measured vs paper)")
    print("Measured girth histogram:", dict(sorted(girth_hist.items())))
    print("Paper: girth 3 -> 39,471; 4 -> 6,561; 5 -> 5,733; >5 -> 26")
    constants = corpus_study.single_edge_cq_with_constants
    singles = corpus_study.single_edge_cq or 1
    print(
        f"Single-edge CQs with constants: measured "
        f"{100.0 * constants / singles:.2f}% (paper 78.70%)"
    )

    # Shape checks.
    proper_cycles = {g: n for g, n in girth_hist.items() if g >= 3}
    if sum(proper_cycles.values()) >= 3:
        # Girth 3 is the most common shortest-cycle length.
        assert max(proper_cycles, key=proper_cycles.get) == 3
    if singles >= 30:
        share = constants / singles
        assert 0.5 < share < 0.95
