"""§6.2 — hypertree width of predicate-variable CQOF queries.

What should hold: virtually every such query has hypertree width 1
(paper: all but 86 width-2 and 8 width-3 queries of 6.96M), and
width-1 decompositions have as many nodes as the query has hyperedges.
"""

from __future__ import annotations

from _bench_utils import banner

from repro.reporting import render_hypertree


def test_hypertree_widths(benchmark, corpus_study):
    widths = benchmark.pedantic(
        lambda: dict(corpus_study.hypertree_widths), rounds=1, iterations=1
    )

    banner("Sec 6.2: hypertree widths (measured vs paper)")
    print(render_hypertree(corpus_study))
    print()
    print("Measured width histogram:", dict(sorted(widths.items())))
    print("Paper: width 1 everywhere except 86 queries (width 2) and 8 (width 3)")

    total = sum(widths.values())
    if total >= 10:
        # Width 1 dominates overwhelmingly.
        assert widths.get(1, 0) / total > 0.9
        # Nothing above width 3.
        assert all(width <= 3 for width in widths)
    # Decomposition node counts exist whenever widths were measured.
    assert sum(corpus_study.decomposition_nodes.values()) == total
