"""Ablation — streak window size (§8).

The paper fixes w=30 and remarks that increasing the window still
yields longer streaks.  This bench sweeps the window and verifies the
monotone effect: larger windows never decrease the longest streak and
never increase the number of streaks.
"""

from __future__ import annotations

from _bench_utils import banner

from repro.analysis import find_streaks
from repro.workload import generate_day_log

WINDOWS = (5, 15, 30, 60)


def test_ablation_streak_window(benchmark):
    log = generate_day_log(n_queries=600, session_rate=0.35, seed=8)

    def sweep():
        return {w: find_streaks(log, window=w) for w in WINDOWS}

    by_window = benchmark.pedantic(sweep, rounds=1, iterations=1)

    banner("Ablation: streak window size (paper uses w=30)")
    print(f"{'window':>7} {'#streaks':>9} {'longest':>8}")
    stats = {}
    for window, streaks in sorted(by_window.items()):
        longest = max((s.length for s in streaks), default=0)
        stats[window] = (len(streaks), longest)
        print(f"{window:>7} {len(streaks):>9} {longest:>8}")

    # Monotonicity: wider windows merge streaks (fewer, not shorter).
    windows = sorted(stats)
    for small, large in zip(windows, windows[1:]):
        assert stats[large][0] <= stats[small][0]
        assert stats[large][1] >= stats[small][1]
