"""Figure 5 — sizes of CQ-like queries with at least two triples.

What should hold: the one-triple fraction is dominant inside each
fragment (paper: 82% / 83.45% / 75.52% for CQ / CQF / CQOF), and among
multi-triple queries the mass sits at 2–3 triples with a thin 11+ tail.
"""

from __future__ import annotations

from _bench_utils import banner

from repro.reporting import render_figure5

PAPER_ONE_TRIPLE = {"CQ": 82.0, "CQF": 83.45, "CQOF": 75.52}


def test_figure5_cq_sizes(benchmark, corpus_study):
    def one_triple_shares():
        shares = {}
        for fragment, sizes in (
            ("CQ", corpus_study.cq_sizes),
            ("CQF", corpus_study.cqf_sizes),
            ("CQOF", corpus_study.cqof_sizes),
        ):
            total = sum(sizes.values()) or 1
            shares[fragment] = 100.0 * sizes.get(1, 0) / total
        return shares

    shares = benchmark.pedantic(one_triple_shares, rounds=1, iterations=1)

    banner("Figure 5: CQ-like query sizes (measured vs paper)")
    print(render_figure5(corpus_study))
    print()
    for fragment, paper_pct in PAPER_ONE_TRIPLE.items():
        print(
            f"1-triple share of {fragment:<5} paper {paper_pct:>6.2f}%  "
            f"measured {shares[fragment]:>6.2f}%"
        )

    # Shape checks.
    for fragment in ("CQ", "CQF", "CQOF"):
        assert shares[fragment] > 40, fragment
    # Multi-triple mass concentrates at small sizes.
    multi = {k: v for k, v in corpus_study.cq_sizes.items() if k >= 2}
    if multi:
        small = sum(v for k, v in multi.items() if k <= 4)
        assert small / sum(multi.values()) > 0.5
