"""Ablation — greedy join ordering in the indexed engine.

DESIGN.md calls out the join-order heuristic as a design choice worth
ablating: the IndexedEngine reorders each BGP greedily by estimated
selectivity.  This bench runs the same chain workloads with reordering
on and off and shows the heuristic never loses badly and wins when the
textual order is adversarial (selective patterns last).
"""

from __future__ import annotations

from _bench_utils import banner

from repro.engine.evaluator import PatternEvaluator
from repro.sparql import parse_query


def _adversarial_query(schema):
    """Joins ordered worst-first: the unselective scan comes first and
    the highly selective constant pattern last."""
    ns = schema.namespace
    return parse_query(
        f"""
        SELECT ?r ?p2 WHERE {{
          ?p1 <{ns}cites> ?p2 .
          ?p1 <{ns}authoredBy> ?r .
          ?r <{ns}type> <{ns}Researcher> .
          ?p1 <{ns}publishedIn> <{ns}journal/0> .
        }}
        """
    )


def _run(graph, query, reorder):
    evaluator = PatternEvaluator(graph, strategy="indexed", reorder=reorder)
    return evaluator.evaluate_query(query)


def test_ablation_join_order(benchmark, figure3_graph):
    import time

    schema, graph = figure3_graph
    query = _adversarial_query(schema)

    def run_reordered():
        return _run(graph, query, reorder=True)

    rows_reordered = benchmark.pedantic(run_reordered, rounds=1, iterations=1)

    started = time.monotonic()
    rows_textual = _run(graph, query, reorder=False)
    textual_elapsed = time.monotonic() - started

    started = time.monotonic()
    _run(graph, query, reorder=True)
    reordered_elapsed = time.monotonic() - started

    banner("Ablation: BGP join ordering (greedy selectivity vs textual)")
    print(f"textual order:   {textual_elapsed * 1e3:9.2f} ms")
    print(f"greedy reorder:  {reordered_elapsed * 1e3:9.2f} ms")
    if reordered_elapsed > 0:
        print(f"speedup:         {textual_elapsed / reordered_elapsed:9.2f}x")

    # Correctness: both orders return the same bag of solutions.
    def canonical(rows):
        return sorted(
            tuple(sorted((v.name, str(t)) for v, t in row.items())) for row in rows
        )

    assert canonical(rows_reordered) == canonical(rows_textual)
    # The heuristic should not lose by more than a small constant.
    assert reordered_elapsed <= textual_elapsed * 2 + 0.05
