"""Table 5 — navigational property-path taxonomy and Ctract.

What should hold: the simple form ``!a`` accounts for a large share of
all paths (paper: 63,039 of 247,404); among navigational paths the
top types are ``(a1|...|ak)*``, ``a*``, ``a1/.../ak`` and ``a*/b``
(paper: 39.12%, 26.42%, 11.65%, 10.39%); non-Ctract expressions are
essentially absent (paper: exactly one, ``(a/b)*``).
"""

from __future__ import annotations

from _bench_utils import banner

from repro.reporting import render_table5

PAPER_TOP_TYPES = {
    "(a1|...|ak)*": 39.12,
    "a*": 26.42,
    "a1/.../ak": 11.65,
    "a*/b": 10.39,
    "a1|...|ak": 8.72,
    "a+": 2.07,
    "a1?/.../ak?": 1.55,
}


def test_table5_property_paths(benchmark, corpus_study):
    rows = benchmark.pedantic(corpus_study.path_table, rounds=1, iterations=1)

    banner("Table 5: property paths (measured vs paper)")
    print(render_table5(corpus_study))
    print()
    measured = {name: pct for name, _, pct, _ in rows}
    print(f"{'Type':<16} {'paper':>8} {'measured':>10}")
    for name, paper_pct in PAPER_TOP_TYPES.items():
        print(f"{name:<16} {paper_pct:>7.2f}% {measured.get(name, 0):>9.2f}%")

    navigational = sum(corpus_study.path_types.values())
    if navigational >= 20:
        # The four dominant types cover most navigational paths.
        top = sum(measured.get(t, 0) for t in list(PAPER_TOP_TYPES)[:4])
        assert top > 60
        # Simple !a occurs, and far more than ^a.
        assert corpus_study.simple_path_forms.get("!a", 0) >= corpus_study.simple_path_forms.get("^a", 0)
    # Ctract outliers are at most a curiosity.
    assert len(corpus_study.non_ctract) <= max(1, navigational * 0.05)
