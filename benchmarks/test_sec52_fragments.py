"""§5.2 — fragment sizes: AOF, CQ, CQF, well-designed, CQOF.

What should hold (paper, of Select/Ask queries or of AOF patterns):
AOF ≈ 74.83% of S/A queries; CQ ≈ 54.58% of AOF; CQF ≈ 84.08% of AOF;
well-designed ≈ 98.53% of AOF; CQOF ≈ 93.87% of AOF; interface width
> 1 is vanishingly rare (paper: 310 queries out of ~39M).
"""

from __future__ import annotations

from _bench_utils import banner

from repro.reporting import render_fragments


def test_fragment_classification(benchmark, corpus_study):
    def fragment_shares():
        aof = corpus_study.aof_count or 1
        return {
            "aof_of_sa": 100.0 * corpus_study.aof_count
            / max(corpus_study.select_ask_count, 1),
            "cq_of_aof": 100.0 * corpus_study.cq_count / aof,
            "cqf_of_aof": 100.0 * corpus_study.cqf_count / aof,
            "wd_of_aof": 100.0 * corpus_study.well_designed_count / aof,
            "cqof_of_aof": 100.0 * corpus_study.cqof_count / aof,
        }

    shares = benchmark.pedantic(fragment_shares, rounds=1, iterations=1)

    banner("Sec 5.2: fragments (measured vs paper)")
    print(render_fragments(corpus_study))
    print()
    paper = {
        "aof_of_sa": 74.83, "cq_of_aof": 54.58, "cqf_of_aof": 84.08,
        "wd_of_aof": 98.53, "cqof_of_aof": 93.87,
    }
    for key, value in paper.items():
        print(f"{key:<12} paper {value:>6.2f}%   measured {shares[key]:>6.2f}%")

    # Shape checks: fragment nesting and magnitudes.
    assert corpus_study.cq_count <= corpus_study.cqf_count <= corpus_study.aof_count
    assert corpus_study.cqof_count <= corpus_study.well_designed_count
    assert shares["aof_of_sa"] > 50
    assert shares["wd_of_aof"] > 85
    assert shares["cqof_of_aof"] > 70
    assert shares["cqf_of_aof"] > shares["cq_of_aof"]
    # Interface width > 1 is rare.
    assert corpus_study.wide_interface_count <= corpus_study.aof_count * 0.02
