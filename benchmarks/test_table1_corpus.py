"""Table 1 — corpus sizes: Total / Valid / Unique per log.

Regenerates the paper's Table 1 by running the clean → parse → dedup
pipeline over the calibrated synthetic corpus.  What should hold: Valid
is a few % below Total (non-query entries and malformed queries), and
Unique is substantially below Valid, with the per-dataset duplication
profile (BioMed13 extremely duplicate-heavy, WikiData17 duplicate-free).
"""

from __future__ import annotations

from _bench_utils import BENCH_SCALE, banner

from repro.logs import build_query_log
from repro.reporting import render_table1

#: Paper values (Total, Valid, Unique) for reference printing.
PAPER_TABLE1 = {
    "DBpedia9/12": (28_534_301, 27_097_467, 13_437_966),
    "DBpedia13": (5_243_853, 4_819_837, 2_628_005),
    "DBpedia14": (37_219_788, 33_996_480, 17_217_448),
    "DBpedia15": (43_478_986, 42_709_778, 13_253_845),
    "DBpedia16": (15_098_176, 14_687_869, 4_369_781),
    "LGD13": (1_841_880, 1_513_868, 357_842),
    "LGD14": (1_999_961, 1_929_130, 628_640),
    "BioP13": (4_627_271, 4_624_430, 687_773),
    "BioP14": (26_438_933, 26_404_710, 2_191_152),
    "BioMed13": (883_374, 882_809, 27_030),
    "SWDF13": (13_762_797, 13_618_017, 1_229_759),
    "BritM14": (1_523_827, 1_513_534, 135_112),
    "WikiData17": (309, 308, 308),
}


def test_table1_pipeline(benchmark, corpus_entries):
    def run_pipeline():
        return {
            name: build_query_log(name, entries)
            for name, entries in corpus_entries.items()
        }

    logs = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)

    banner(f"Table 1 (measured @ scale {BENCH_SCALE:g}) vs paper")
    print(render_table1(logs))
    print()
    print("Paper (scaled expectation in parentheses):")
    for name, (total, valid, unique) in PAPER_TABLE1.items():
        log = logs[name]
        print(
            f"  {name:<12} paper T/V/U = {total:>10,}/{valid:>10,}/{unique:>10,}"
            f"  (scaled ~{total * BENCH_SCALE:,.0f}/{valid * BENCH_SCALE:,.0f}"
            f"/{unique * BENCH_SCALE:,.0f})"
            f"  measured {log.total}/{log.valid}/{log.unique}"
        )

    # Shape checks: orderings the paper's Table 1 exhibits.
    for name, log in logs.items():
        assert log.unique <= log.valid <= log.total, name
    # Valid share is high everywhere (paper: 82–99.9%).
    for name, log in logs.items():
        if log.total >= 20:
            assert log.valid / log.total > 0.7, name
    # Duplicate-heavy datasets deduplicate much harder than WikiData.
    biomed = logs["BioMed13"]
    if biomed.valid >= 10:
        assert biomed.unique / biomed.valid < 0.6
