"""Table 3 — operator-set distribution over {And, Filter, Opt, Graph,
Union} for Select/Ask queries.

What should hold: "none" is the largest single row; CPF (conjunctive
patterns with filters: none/F/A/A,F) covers roughly two thirds of the
queries (paper: 66.27%); adding Opt contributes several more percent
(paper: +8.56%).
"""

from __future__ import annotations

from _bench_utils import banner

from repro.reporting import render_table3

PAPER_TABLE3 = {
    "none": 33.49, "F": 19.04, "A": 7.49, "A, F": 6.25,
    "CPF subtotal": 66.27,
    "O": 1.04, "O, F": 3.43, "A, O": 3.31, "A, O, F": 0.78,
    "G": 2.65, "U": 7.46, "U, F": 0.38, "A, U": 1.57, "A, U, F": 1.56,
    "A, O, U, F": 7.82,
}


def test_table3_operator_sets(benchmark, corpus_study):
    rows = benchmark.pedantic(
        corpus_study.operator_table, rounds=1, iterations=1
    )

    banner("Table 3: operator sets (measured vs paper)")
    print(render_table3(corpus_study))
    print()
    measured = {label: pct for label, _, pct in rows}
    print(f"{'Operator set':<14} {'paper':>8} {'measured':>10}")
    for label, paper_pct in PAPER_TABLE3.items():
        print(f"{label:<14} {paper_pct:>7.2f}% {measured.get(label, 0):>9.2f}%")

    # Shape checks.
    assert measured["CPF subtotal"] > 45
    assert measured["none"] == max(
        pct for label, pct in measured.items() if label != "CPF subtotal"
    )
    opt_increment, opt_pct = corpus_study.cpf_plus("O")
    assert opt_pct > 1
    # "Other features" (paths, Bind, Minus, subqueries) stay a small slice.
    other = 100.0 * corpus_study.operator_other_features / max(
        corpus_study.select_ask_count, 1
    )
    assert other < 15
