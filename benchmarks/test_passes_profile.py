"""Analyzer-pass microbench: machine-readable per-pass timings.

Runs the profiled study twice over the session corpus — structural
cache enabled and disabled — and writes ``BENCH_passes.json`` (path
overridable via ``REPRO_BENCH_PASSES_JSON``) with per-pass wall time,
the cache hit rate, and the cached/uncached comparison.  The CI
bench-smoke job uploads the file as an artifact, so the perf
trajectory of the analysis hot path is recorded per commit instead of
scrolling away in job logs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from _bench_utils import banner
from repro.analysis.context import AnalysisOptions
from repro.analysis.study import study_corpus


def profiled_run(corpus_logs, cache_size):
    study = study_corpus(
        corpus_logs, options=AnalysisOptions(profile=True, cache_size=cache_size)
    )
    return study.pass_profile


def test_pass_profile_artifact(corpus_study, corpus_logs):
    cached = profiled_run(corpus_logs, cache_size=4096)
    uncached = profiled_run(corpus_logs, cache_size=0)

    lookups = cached.cache_hits + cached.cache_misses
    payload = {
        "queries": cached.queries,
        "passes": {
            name: round(seconds, 6)
            for name, seconds in sorted(cached.seconds.items())
        },
        "total_seconds": round(cached.total_seconds, 6),
        "uncached_total_seconds": round(uncached.total_seconds, 6),
        "cache": {
            "hits": cached.cache_hits,
            "misses": cached.cache_misses,
            "hit_rate": round(cached.cache_hit_rate, 4),
        },
    }
    out_path = Path(os.environ.get("REPRO_BENCH_PASSES_JSON", "BENCH_passes.json"))
    # Merge key-wise: other benches (the Table 6 streak comparison)
    # contribute their own top-level keys to the same artifact.
    if out_path.exists():
        merged = json.loads(out_path.read_text(encoding="utf-8"))
        merged.update(payload)
        payload = merged
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    banner("Analyzer passes: per-pass wall time (cache on)")
    for name, seconds in sorted(
        cached.seconds.items(), key=lambda item: item[1], reverse=True
    ):
        print(f"  {name:<10} {seconds:8.4f}s")
    print(
        f"  cache: {cached.cache_hits}/{lookups} hits "
        f"({100.0 * cached.cache_hit_rate:.1f}%), "
        f"total {cached.total_seconds:.4f}s vs "
        f"{uncached.total_seconds:.4f}s uncached"
    )
    print(f"  wrote {out_path}")

    # The profiled pipeline measured the whole unique stream, and the
    # shared fixture study proves the numbers came from the same corpus.
    assert cached.queries == sum(
        stats.queries for stats in corpus_study.datasets.values()
    )
    assert set(cached.seconds) == {
        "shallow", "paths", "operators", "fragments", "structure",
    }
    assert lookups > 0
    assert out_path.exists()
