"""Table 4 — cumulative shape analysis of CQ / CQF / CQOF.

What should hold (paper, Unique corpus): single edges ≈ 72–81% of each
fragment; chains push coverage past 90%; trees/forests reach ≈ 99.9%;
plain cycles are vanishingly rare (0.02–0.03%); flower sets close the
gap to ~100%; all queries have treewidth ≤ 2 except a single
treewidth-3 query in the whole corpus.
"""

from __future__ import annotations

from _bench_utils import banner

from repro.reporting import render_table4

#: Paper Table 4, CQ column (shape -> relative %).
PAPER_TABLE4_CQ = {
    "single edge": 77.98, "chain": 98.87, "chain set": 98.93,
    "star": 0.94, "tree": 99.90, "forest": 99.95, "cycle": 0.03,
    "flower": 99.94, "flower set": 100.00,
}


def test_table4_shape_analysis(benchmark, corpus_study):
    tables = benchmark.pedantic(
        lambda: {f: corpus_study.shape_table(f) for f in ("CQ", "CQF", "CQOF")},
        rounds=1,
        iterations=1,
    )

    banner("Table 4: cumulative shape analysis (measured vs paper CQ column)")
    print(render_table4(corpus_study))
    print()
    measured_cq = {label: pct for label, _, pct in tables["CQ"]}
    print(f"{'Shape':<12} {'paper CQ':>9} {'measured':>10}")
    for shape, paper_pct in PAPER_TABLE4_CQ.items():
        print(f"{shape:<12} {paper_pct:>8.2f}% {measured_cq.get(shape, 0):>9.2f}%")

    # Shape checks on every fragment.
    for fragment in ("CQ", "CQF", "CQOF"):
        rows = {label: pct for label, _, pct in tables[fragment]}
        total = corpus_study.shape_totals[fragment]
        if total < 20:
            continue
        assert rows["single edge"] > 50
        assert rows["chain"] >= rows["single edge"]
        assert rows["tree"] >= rows["chain"]
        assert rows["forest"] >= rows["tree"]
        assert rows["flower set"] >= rows["flower"]
        assert rows["flower set"] > 97
        assert rows["cycle"] < 3
        assert rows["star"] < 25
        # Treewidth: everything ≤ 2 (3 is the paper's single outlier).
        assert rows["treewidth <= 2"] > 99 or total < 100
